"""Tests for the remote cache tier and fleet job dispatch.

The property suites (hypothesis) pin the wire protocol: any payload
round-trips through the canonical pickle envelope byte-exactly, and
any single-byte tamper is caught by the sha256 digest before the
bytes can reach a ``pickle.loads``.  The socket suites run a real
cache server (:class:`~repro.remote.cache_server.
BackgroundCacheServer`) and a real ``repro serve`` peer (subprocess)
to verify the acceptance property end to end: results are
byte-identical for peer counts {0, 1, 2}, and a warm remote cache
serves a second "host" with zero executions.
"""

import http.client
import re
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import MISS, EvalJob, ExperimentEngine, ResultCache
from repro.engine.faults import PeerUnreachable
from repro.remote import protocol
from repro.remote.cache_server import BackgroundCacheServer, ObjectStore
from repro.remote.client import (
    RemoteCacheClient,
    RemoteCacheVerificationError,
)
from repro.remote.dispatch import (
    LOCAL_NODE,
    FleetDispatcher,
    PeerClient,
    rendezvous_owner,
)


def _job(**overrides) -> EvalJob:
    defaults = dict(model="llava-video", dataset="videomme",
                    method="dense", num_samples=1, seed=0)
    defaults.update(overrides)
    return EvalJob(**defaults)


# A closed port: connecting is refused immediately (no timeout wait).
DEAD_PEER = "http://127.0.0.1:1"


payloads = st.recursive(
    st.none() | st.booleans() | st.integers()
    | st.floats(allow_nan=False) | st.text() | st.binary(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestProtocol:
    @given(payload=payloads)
    @settings(max_examples=50, deadline=None)
    def test_payload_round_trip(self, payload):
        data = protocol.encode_payload(payload)
        assert protocol.decode_payload(data) == payload
        # Canonical bytes: re-encoding the decoded payload is stable.
        assert protocol.encode_payload(
            protocol.decode_payload(data)
        ) == data

    @given(data=st.binary(min_size=1), index=st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_digest_catches_any_single_byte_tamper(self, data, index):
        index %= len(data)
        tampered = bytearray(data)
        tampered[index] ^= 0xFF
        assert protocol.payload_digest(data) != protocol.payload_digest(
            bytes(tampered)
        )

    @given(seeds=st.lists(st.integers(0, 2**31), min_size=1,
                          max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_job_batch_round_trip(self, seeds):
        jobs = [_job(seed=seed) for seed in seeds]
        assert protocol.decode_jobs(protocol.encode_jobs(jobs)) == jobs

    def test_job_results_round_trip(self):
        data = protocol.encode_payload({"accuracy": 61.2})
        entries = {
            _job().job_id: ("ok", protocol.payload_digest(data), data),
            _job(seed=1).job_id: ("failed", {"error": "boom"}),
        }
        assert protocol.decode_job_results(
            protocol.encode_job_results(entries)
        ) == entries

    @pytest.mark.parametrize("body", [
        b"", b"junk", protocol.encode_payload((99, [])),
        protocol.encode_payload((protocol.PROTOCOL_VERSION, "nope")),
    ])
    def test_decode_jobs_rejects_junk(self, body):
        with pytest.raises(ValueError):
            protocol.decode_jobs(body)

    def test_valid_job_id(self):
        assert protocol.valid_job_id(_job().job_id)
        assert not protocol.valid_job_id("deadbeef")
        assert not protocol.valid_job_id("Z" * 32)
        assert not protocol.valid_job_id("../../etc/passwd")


class TestRendezvous:
    NODES = [LOCAL_NODE, "http://a:1", "http://b:1", "http://c:1"]

    def test_deterministic_and_order_insensitive(self):
        job_id = _job().job_id
        owner = rendezvous_owner(job_id, self.NODES)
        assert owner in self.NODES
        assert rendezvous_owner(job_id, list(reversed(self.NODES))) \
            == owner

    def test_removing_a_node_only_reassigns_its_jobs(self):
        job_ids = [_job(seed=seed).job_id for seed in range(64)]
        before = {jid: rendezvous_owner(jid, self.NODES)
                  for jid in job_ids}
        survivors = [n for n in self.NODES if n != "http://b:1"]
        for jid in job_ids:
            after = rendezvous_owner(jid, survivors)
            if before[jid] != "http://b:1":
                assert after == before[jid]
            else:
                assert after in survivors

    def test_spreads_over_the_fleet(self):
        job_ids = [_job(seed=seed).job_id for seed in range(128)]
        owners = {rendezvous_owner(jid, self.NODES)
                  for jid in job_ids}
        assert owners == set(self.NODES)  # 128 jobs hit all 4 nodes

    def test_empty_node_set_raises(self):
        with pytest.raises(ValueError):
            rendezvous_owner(_job().job_id, [])


class TestObjectStore:
    def test_put_get_head_present(self, tmp_path):
        store = ObjectStore(tmp_path / "store")
        job_id = _job().job_id
        assert store.get(job_id) is None
        assert store.head(job_id) is None
        store.put(job_id, b"payload")
        assert store.get(job_id) == b"payload"
        assert store.head(job_id) == len(b"payload")
        assert store.present([job_id, "f" * 32]) == [job_id]
        assert store.usage_bytes() == len(b"payload")

    def test_put_is_idempotent_overwrite(self, tmp_path):
        store = ObjectStore(tmp_path)
        job_id = _job().job_id
        store.put(job_id, b"first")
        store.put(job_id, b"second")
        assert store.get(job_id) == b"second"
        assert store.usage_bytes() == len(b"second")

    def test_prunes_least_recently_used(self, tmp_path):
        store = ObjectStore(tmp_path, max_bytes=250)
        job_ids = [_job(seed=seed).job_id for seed in range(4)]
        now = time.time()
        for rank, job_id in enumerate(job_ids[:3]):
            store.put(job_id, b"x" * 100)
            # Deterministic LRU order without sleeping.
            path = store._path(job_id)
            import os
            os.utime(path, (now + rank, now + rank))
        store.put(job_ids[3], b"x" * 100)  # over cap: evict oldest
        assert store.get(job_ids[0]) is None
        assert store.evictions >= 1
        assert store.usage_bytes() <= 250


class TestCacheServer:
    def test_round_trip_over_http(self, tmp_path):
        with BackgroundCacheServer(tmp_path) as server:
            client = RemoteCacheClient(server.url)
            job_id = _job().job_id
            data = protocol.encode_payload({"accuracy": 61.2})
            assert client.healthy()
            assert client.get(job_id) is None
            assert not client.head(job_id)
            assert client.put(job_id, data)
            assert client.head(job_id)
            assert client.get(job_id) == data
            assert client.manifest([job_id, "f" * 32]) == {job_id}

    def test_rejects_corrupt_upload_and_bad_ids(self, tmp_path):
        with BackgroundCacheServer(tmp_path) as server:
            job_id = _job().job_id
            host, port = server.url.split("//")[1].split(":")
            conn = http.client.HTTPConnection(host, int(port))
            try:
                conn.request(
                    "PUT", f"/cache/{job_id}", body=b"payload",
                    headers={protocol.DIGEST_HEADER: "0" * 64},
                )
                assert conn.getresponse().status == 400
            finally:
                conn.close()
            client = RemoteCacheClient(server.url)
            assert client.get(job_id) is None  # nothing was stored
            conn = http.client.HTTPConnection(host, int(port))
            try:
                conn.request("GET", "/cache/not-a-job-id")
                assert conn.getresponse().status == 400
            finally:
                conn.close()

    def test_client_verifies_fetched_digest(self, tmp_path):
        client = RemoteCacheClient("http://127.0.0.1:9")
        client._request = lambda *a, **k: (  # type: ignore[assignment]
            200, {protocol.DIGEST_HEADER: "0" * 64}, b"tampered"
        )
        with pytest.raises(RemoteCacheVerificationError):
            client.get(_job().job_id)

    def test_client_validates_base_url(self):
        with pytest.raises(ValueError):
            RemoteCacheClient("ftp://nope:1")
        with pytest.raises(ValueError):
            RemoteCacheClient("not a url")

    def test_client_survives_a_dead_server(self):
        client = RemoteCacheClient(DEAD_PEER, timeout=0.5)
        job_id = _job().job_id
        assert client.get(job_id) is None
        assert not client.put(job_id, b"data")
        assert client.manifest([job_id]) is None
        assert not client.healthy()
        # Three consecutive failures mark the server down; further
        # calls skip the network entirely during the cooldown.
        assert not client.available()


class _FakeRemote:
    """In-memory stand-in with the client's get/put/manifest surface."""

    def __init__(self):
        self.objects: dict[str, bytes] = {}
        self.gets = 0
        self.verify_error = False

    def get(self, job_id):
        self.gets += 1
        if self.verify_error:
            raise RemoteCacheVerificationError("digest mismatch")
        return self.objects.get(job_id)

    def put(self, job_id, data):
        self.objects[job_id] = data
        return True

    def manifest(self, job_ids):
        return {j for j in job_ids if j in self.objects}


class TestRemoteTier:
    def test_lookup_falls_through_to_remote_and_backfills(
        self, tmp_path
    ):
        job = _job()
        remote = _FakeRemote()
        remote.put(job.job_id,
                   protocol.encode_payload({"accuracy": 50.0}))
        cache = ResultCache(cache_dir=tmp_path, remote=remote)
        payload, tier = cache.lookup(job)
        assert payload == {"accuracy": 50.0}
        assert tier == "remote"
        assert cache.stats.remote_hits == 1
        # Back-filled into both local tiers: served from memory now,
        # and a fresh cache on the same directory serves from disk.
        assert cache.lookup(job)[1] == "memory"
        sibling = ResultCache(cache_dir=tmp_path)
        assert sibling.lookup(job)[1] == "disk"

    def test_put_publishes_write_behind(self, tmp_path):
        with BackgroundCacheServer(tmp_path / "store") as server:
            client = RemoteCacheClient(server.url)
            cache = ResultCache(remote=client)
            job = _job()
            cache.put(job, {"accuracy": 61.2})
            cache.flush_remote()
            assert client.get(job.job_id) == protocol.encode_payload(
                {"accuracy": 61.2}
            )
            assert cache.stats.remote_stores == 1

    def test_verification_failure_degrades_to_miss(self):
        remote = _FakeRemote()
        remote.verify_error = True
        cache = ResultCache(remote=remote)
        payload, tier = cache.lookup(_job())
        assert payload is MISS and tier is None
        assert cache.stats.remote_verify_failures == 1
        assert cache.stats.misses == 1

    def test_prefetch_marks_absence_and_skips_the_network(self):
        remote = _FakeRemote()
        present = _job()
        absent = _job(seed=1)
        remote.put(present.job_id, protocol.encode_payload("hit"))
        cache = ResultCache(remote=remote)
        assert cache.prefetch([present, absent]) == 1
        assert cache.lookup(absent) == (MISS, None)
        assert remote.gets == 0  # known-absent: no GET issued
        assert cache.lookup(present)[1] == "remote"
        assert remote.gets == 1

    def test_stats_delta_and_tiers(self):
        remote = _FakeRemote()
        job = _job()
        remote.put(job.job_id, protocol.encode_payload("x"))
        cache = ResultCache(remote=remote)
        before = cache.stats.snapshot()
        cache.lookup(job)           # remote hit
        cache.lookup(job)           # memory hit
        cache.lookup(_job(seed=9))  # miss
        delta = cache.stats.snapshot().delta(before)
        assert delta.tiers() == {"memory": 1, "disk": 0, "remote": 1}
        assert delta.hits == 2 and delta.misses == 1
        # The snapshot is detached: mutating the live stats afterwards
        # does not disturb an already-computed delta.
        cache.lookup(job)
        assert delta.hits == 2


class TestFleetDispatch:
    def test_dispatcher_dedupes_and_partitions(self):
        fleet = FleetDispatcher(
            ["http://a:1/", "http://a:1", "http://b:1"]
        )
        assert fleet.peer_urls == ["http://a:1", "http://b:1"]
        jobs = [_job(seed=seed) for seed in range(32)]
        shares = fleet.partition(jobs)
        scattered = [job for share in shares.values() for job in share]
        assert sorted(scattered, key=lambda j: j.job_id) \
            == sorted(jobs, key=lambda j: j.job_id)
        assert set(shares) <= {LOCAL_NODE, "http://a:1", "http://b:1"}

    def test_no_peers_means_all_local(self):
        fleet = FleetDispatcher([])
        jobs = [_job(seed=seed) for seed in range(8)]
        assert fleet.partition(jobs) == {LOCAL_NODE: jobs}

    def test_down_peer_excluded_from_partition(self):
        fleet = FleetDispatcher(["http://a:1"])
        peer = fleet.peer("http://a:1")
        peer.note_failure()
        peer.note_failure()  # DOWN_AFTER_FAILURES = 2
        assert not peer.available()
        jobs = [_job(seed=seed) for seed in range(8)]
        assert fleet.partition(jobs) == {LOCAL_NODE: jobs}

    def test_execute_raises_peer_unreachable(self):
        client = PeerClient(DEAD_PEER, execute_timeout=0.5)
        with pytest.raises(PeerUnreachable):
            client.execute([_job()])
        assert not client.healthy()

    def test_engine_degrades_to_local_when_peer_is_dead(self):
        fleet_engine = ExperimentEngine(peers=[DEAD_PEER])
        solo_engine = ExperimentEngine()
        # Enough jobs that rendezvous deterministically owns some to
        # the (dead) peer.
        jobs = [_job(num_samples=1, seed=seed) for seed in range(16)]
        try:
            fleet_results = fleet_engine.run(list(jobs))
            solo_results = solo_engine.run(list(jobs))
        finally:
            fleet_engine.close()
            solo_engine.close()
        def canon(results):
            # run() returns results in completion order; identity is
            # per-payload, not dict insertion order.
            return protocol.encode_payload(sorted(
                (job.job_id, protocol.encode_payload(payload))
                for job, payload in results.items()
            ))

        assert canon(fleet_results) == canon(solo_results)
        assert fleet_engine.stats.peer_failures >= 1
        assert fleet_engine.stats.remote_jobs == 0
        assert fleet_engine.stats.executed == len(jobs)


def _stop_peer(proc):
    """Terminate a peer subprocess; never leak it or its pipes.

    ``terminate`` first (clean asyncio shutdown), escalate to ``kill``
    if it doesn't exit within the grace period, and always close the
    stdio pipes — a leaked pipe keeps the socket pair (and on failure
    paths the whole process) alive past the test.
    """
    try:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)
    finally:
        for pipe in (proc.stdout, proc.stderr):
            if pipe is not None:
                pipe.close()


def _start_peer(env):
    """Spawn a ``repro serve`` peer; return (process, base_url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--no-store"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stderr.readline()
            match = re.search(r"http://[\d.]+:\d+", line)
            if match:
                return proc, match.group(0)
            if proc.poll() is not None:
                break
    except BaseException:
        _stop_peer(proc)
        raise
    _stop_peer(proc)
    raise RuntimeError("peer never announced its address")


@pytest.mark.slow
class TestFleetParity:
    def test_reports_identical_for_any_peer_count(self):
        import os
        import pathlib

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).parents[1])

        def run(peers):
            argv = [sys.executable, "-m", "repro.cli", "table2",
                    "--samples", "1"]
            if peers:
                argv += ["--peers", ",".join(peers)]
            out = subprocess.run(
                argv, env=env, capture_output=True, text=True,
                timeout=300,
            )
            assert out.returncode == 0, out.stderr
            # Strip the timing-dependent summary line.
            return out.stdout.rsplit("[table2", 1)[0]

        peers, procs = [], []
        try:
            for _ in range(2):
                proc, url = _start_peer(env)
                procs.append(proc)
                peers.append(url)
            solo = run([])
            one = run(peers[:1])
            two = run(peers)
        finally:
            for proc in procs:
                _stop_peer(proc)
        assert one == solo
        assert two == solo
