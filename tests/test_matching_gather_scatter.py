"""Tests for the SIC: matcher, gather, scatter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FocusConfig
from repro.core.blocks import build_neighbor_table
from repro.core.gather import TABLE_CACHE_MAX_ENTRIES, SimilarityGather
from repro.core.matching import SimilarityMatcher
from repro.core.scatter import (
    gathered_gemm,
    scatter_accumulation_ops,
    scatter_counts,
)


def _grid_positions(frames, height, width):
    return np.array([
        [f, r, c]
        for f in range(frames) for r in range(height) for c in range(width)
    ])


class TestSplitBlocks:
    def test_exact_division(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 12)
        blocks = SimilarityMatcher.split_blocks(x, 4)
        assert blocks.shape == (2, 3, 4)
        np.testing.assert_array_equal(blocks[0, 0], x[0, :4])

    def test_ragged_final_block_zero_padded(self):
        x = np.ones((1, 10), dtype=np.float32)
        blocks = SimilarityMatcher.split_blocks(x, 4)
        assert blocks.shape == (1, 3, 4)
        np.testing.assert_array_equal(blocks[0, 2], [1, 1, 0, 0])

    def test_token_wise(self):
        x = np.ones((2, 10), dtype=np.float32)
        blocks = SimilarityMatcher.split_blocks(x, 0)
        assert blocks.shape == (2, 1, 10)


class TestMatcher:
    def _match(self, x, positions, grid, block=(2, 2, 2), threshold=0.9,
               vector=4):
        matcher = SimilarityMatcher(threshold)
        table = build_neighbor_table(positions, grid, block)
        return matcher.match_tile(matcher.split_blocks(x, vector), table)

    def test_identical_neighbours_match(self):
        grid = (1, 1, 3)
        positions = _grid_positions(*grid)
        x = np.tile(np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32),
                    (3, 1))
        outcome = self._match(x, positions, grid, block=(1, 1, 2))
        # Tokens 1 and 2 both match token 0 through the chain.
        np.testing.assert_array_equal(outcome.reps[0], [0, 0, 0])

    def test_dissimilar_neighbours_kept(self, rng):
        grid = (1, 1, 3)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        outcome = self._match(x, positions, grid, block=(1, 1, 2))
        np.testing.assert_array_equal(outcome.reps[0], [0, 1, 2])

    def test_threshold_boundary(self):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        a = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)
        # cosine exactly at threshold must NOT match (strict >).
        matcher = SimilarityMatcher(1.0)
        table = build_neighbor_table(positions, grid, (1, 1, 2))
        outcome = matcher.match_tile(
            matcher.split_blocks(np.stack([a, a]), 4), table
        )
        np.testing.assert_array_equal(outcome.reps[0], [0, 1])

    def test_chained_representatives(self):
        # b matches a; c matches the *stored* value of b, i.e. a.
        grid = (1, 1, 3)
        positions = _grid_positions(*grid)
        a = np.array([1.0, 0.0], dtype=np.float32)
        b = np.array([0.99, 0.02], dtype=np.float32)
        c = np.array([0.98, 0.04], dtype=np.float32)
        outcome = self._match(np.stack([a, b, c]), positions, grid,
                              block=(1, 1, 2), vector=2)
        assert outcome.reps[0, 1] == 0
        assert outcome.reps[0, 2] == 0

    def test_zero_vectors_match_each_other(self):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        x = np.zeros((2, 4), dtype=np.float32)
        outcome = self._match(x, positions, grid, block=(1, 1, 2))
        np.testing.assert_array_equal(outcome.reps[0], [0, 0])

    def test_zero_vs_nonzero_kept(self):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        x = np.stack([
            np.zeros(4, dtype=np.float32),
            np.ones(4, dtype=np.float32),
        ])
        outcome = self._match(x, positions, grid, block=(1, 1, 2))
        np.testing.assert_array_equal(outcome.reps[0], [0, 1])

    def test_per_block_independence(self):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        # Block 0 identical, block 1 orthogonal.
        x = np.array([
            [1.0, 1.0, 1.0, 0.0],
            [1.0, 1.0, 0.0, 1.0],
        ], dtype=np.float32)
        matcher = SimilarityMatcher(0.9)
        table = build_neighbor_table(positions, grid, (1, 1, 2))
        outcome = matcher.match_tile(matcher.split_blocks(x, 2), table)
        assert outcome.reps[0, 1] == 0  # first block deduplicated
        assert outcome.reps[1, 1] == 1  # second block kept

    def test_comparison_count(self, rng):
        grid = (1, 2, 2)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        outcome = self._match(x, positions, grid, block=(1, 2, 2))
        # 0+1+1+3 partners, times 2 k-blocks of size 4.
        assert outcome.comparisons == 5 * 2

    def test_unique_counts(self):
        grid = (1, 1, 3)
        positions = _grid_positions(*grid)
        x = np.tile(np.array([[2.0, 1.0, 0.0, 1.0]], dtype=np.float32),
                    (3, 1))
        outcome = self._match(x, positions, grid, block=(1, 1, 2))
        assert outcome.unique_counts()[0] == 1


class TestTableCacheBound:
    """Regression: the neighbor-table cache must stay bounded when one
    gather engine serves many samples (streaming use)."""

    def _inputs(self, grid=(2, 3, 3), dim=8):
        tokens = grid[0] * grid[1] * grid[2]
        positions = _grid_positions(*grid)
        x = np.random.default_rng(0).standard_normal(
            (tokens, dim)
        ).astype(np.float32)
        is_text = np.zeros(tokens, dtype=bool)
        return x, positions, is_text, grid

    def test_stale_cache_tokens_evicted(self):
        engine = SimilarityGather(FocusConfig(vector_size=4))
        x, positions, is_text, grid = self._inputs()
        for token in range(200):
            engine.gather(x, positions, is_text, grid,
                          cache_token=("sample", token))
        assert len(engine._table_cache) <= TABLE_CACHE_MAX_ENTRIES
        # Only the most recent token's tables survive.
        assert {k[0] for k in engine._table_cache} == {("sample", 199)}

    def test_lru_cap_within_one_token(self):
        # 200 tokens at m_tile=2 is 100 tiles — more than the cap.
        engine = SimilarityGather(FocusConfig(vector_size=4, m_tile=2))
        x, positions, is_text, grid = self._inputs(grid=(2, 10, 10))
        engine.gather(x, positions, is_text, grid, cache_token="one")
        assert len(engine._table_cache) <= TABLE_CACHE_MAX_ENTRIES

    def test_tables_reused_within_token(self):
        engine = SimilarityGather(FocusConfig(vector_size=4))
        x, positions, is_text, grid = self._inputs()
        first = engine._neighbor_table(
            positions, is_text, grid, (0, 18), "tok"
        )
        second = engine._neighbor_table(
            positions, is_text, grid, (0, 18), "tok"
        )
        assert first is second

    def test_uncached_when_token_is_none(self):
        engine = SimilarityGather(FocusConfig(vector_size=4))
        x, positions, is_text, grid = self._inputs()
        engine.gather(x, positions, is_text, grid, cache_token=None)
        assert len(engine._table_cache) == 0


class TestGather:
    def _gather(self, x, positions, is_text, grid, **overrides):
        config = FocusConfig(m_tile=overrides.pop("m_tile", 1024),
                             vector_size=overrides.pop("vector_size", 4),
                             **overrides)
        return SimilarityGather(config).gather(x, positions, is_text, grid)

    def test_x_approx_rows_come_from_reps(self, rng):
        grid = (2, 3, 3)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((18, 8)).astype(np.float32)
        is_text = np.zeros(18, dtype=bool)
        result = self._gather(x, positions, is_text, grid)
        v = result.vector_size
        for b in range(result.reps.shape[0]):
            for i in range(18):
                rep = result.reps[b, i]
                np.testing.assert_array_equal(
                    result.x_approx[i, b * v:(b + 1) * v],
                    x[rep, b * v:(b + 1) * v],
                )

    def test_duplicate_frames_compress(self):
        grid = (2, 2, 2)
        positions = _grid_positions(*grid)
        frame = np.random.default_rng(5).standard_normal((4, 8)).astype(
            np.float32
        )
        x = np.concatenate([frame, frame])  # second frame identical
        is_text = np.zeros(8, dtype=bool)
        result = self._gather(x, positions, is_text, grid)
        # Every frame-1 vector matches its frame-0 counterpart.
        assert result.unique_total <= result.total_vectors / 2 + 8

    def test_text_rows_never_matched(self, rng):
        grid = (1, 2, 2)
        positions = np.concatenate([
            _grid_positions(*grid), [[-1, -1, -1]], [[-1, -1, -1]]
        ])
        row = rng.standard_normal(8).astype(np.float32)
        x = np.tile(row, (6, 1))
        is_text = np.array([False] * 4 + [True] * 2)
        result = self._gather(x, positions, is_text, grid)
        for b in range(result.reps.shape[0]):
            assert result.reps[b, 4] == 4
            assert result.reps[b, 5] == 5

    def test_tile_boundary_blocks_matching(self):
        grid = (1, 1, 4)
        positions = _grid_positions(*grid)
        row = np.ones(8, dtype=np.float32)
        x = np.tile(row, (4, 1))
        is_text = np.zeros(4, dtype=bool)
        whole = self._gather(x, positions, is_text, grid, m_tile=1024)
        split = self._gather(x, positions, is_text, grid, m_tile=2)
        # With one tile everything collapses to a single vector per
        # block; the tile boundary forces one extra unique per block.
        assert whole.unique_total < split.unique_total

    def test_token_wise_mode(self, rng):
        grid = (1, 2, 2)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        is_text = np.zeros(4, dtype=bool)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config, token_wise=True).gather(
            x, positions, is_text, grid
        )
        assert result.reps.shape[0] == 1
        assert result.vector_size == 8

    def test_compression_ratio(self):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        x = np.ones((2, 4), dtype=np.float32)
        is_text = np.zeros(2, dtype=bool)
        result = self._gather(x, positions, is_text, grid)
        assert result.compression_ratio == pytest.approx(2.0)

    def test_tile_rows_parallel_to_lengths(self, rng):
        grid = (2, 2, 2)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((8, 8)).astype(np.float32)
        is_text = np.zeros(8, dtype=bool)
        result = self._gather(x, positions, is_text, grid, m_tile=4)
        assert len(result.tile_rows) == len(result.tile_lengths)
        assert set(result.tile_rows) == {4}


class TestScatter:
    @given(st.integers(1, 4), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_gathered_gemm_equals_dense_on_approx(self, frames, seed):
        """The core correctness contract of Sec. VI-C: concentrated
        GEMM + scatter equals the dense GEMM over the gathered input."""
        rng = np.random.default_rng(seed)
        grid = (frames, 2, 2)
        positions = _grid_positions(*grid)
        n_tokens = frames * 4
        x = rng.standard_normal((n_tokens, 8)).astype(np.float32)
        # Make some duplicates so scattering actually happens.
        if n_tokens >= 8:
            x[4:8] = x[0:4]
        is_text = np.zeros(n_tokens, dtype=bool)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(x, positions, is_text, grid)
        weight = rng.standard_normal((8, 6)).astype(np.float32)
        out = gathered_gemm(x, weight, result)
        np.testing.assert_allclose(out, result.x_approx @ weight,
                                   rtol=1e-4, atol=1e-5)

    def test_weight_shape_check(self, rng):
        grid = (1, 1, 2)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((2, 8)).astype(np.float32)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(2, dtype=bool), grid
        )
        with pytest.raises(ValueError):
            gathered_gemm(x, np.zeros((5, 3)), result)

    def test_scatter_counts_sum_to_rows(self, rng):
        grid = (2, 2, 2)
        positions = _grid_positions(*grid)
        x = rng.standard_normal((8, 8)).astype(np.float32)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(8, dtype=bool), grid
        )
        counts = scatter_counts(result)
        assert counts.sum() == 8 * result.reps.shape[0]

    def test_accumulation_ops_formula(self):
        assert scatter_accumulation_ops(1024, 32, 6) == 1024 * 32 * 6
