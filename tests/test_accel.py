"""Tests for the accelerator models: trace, systolic, arch, area,
DRAM, buffers, focus unit, simulator, scaling."""

import numpy as np
import pytest

from repro.accel.arch import ADAPTIV, ARCH_CONFIGS, CMC, FOCUS, SYSTOLIC, ArchConfig
from repro.accel.area import area_breakdown, focus_overhead_fraction, total_area_mm2
from repro.accel.buffers import (
    fits,
    output_buffer_kb_for_tile,
    tiling_requirement,
)
from repro.accel.dram import DramModel
from repro.accel.focus_unit import (
    _sorter_cycles,
    focus_unit_activity,
    scatter_cycles,
    sec_sorter_cycles,
    sic_matcher_cycles,
)
from repro.accel.scaling import ScaleFactors, scale_gemm, scale_to_paper
from repro.accel.simulator import simulate, simulate_many
from repro.accel.systolic import (
    concentrated_gemm_cycles,
    dense_gemm_cycles,
    gemm_utilization,
    tile_utilization,
)
from repro.accel.trace import GemmTrace, ModelTrace, SecEvent
from repro.core.topk import sorter_cycles as core_sorter_cycles


class TestGemmTrace:
    def test_dense_macs(self):
        gemm = GemmTrace(name="fc1", layer=0, m=10, k=20, n=30)
        assert gemm.dense_macs == 6000
        assert gemm.macs == 6000

    def test_concentrated_macs(self):
        gemm = GemmTrace(name="fc1", layer=0, m=10, k=64, n=30,
                         input_unique=12, vector_size=32)
        assert gemm.k_blocks == 2
        assert gemm.macs == 12 * 32 * 30

    def test_bytes_dense(self):
        gemm = GemmTrace(name="fc1", layer=0, m=4, k=8, n=2)
        assert gemm.input_bytes == 4 * 8 * 2
        assert gemm.weight_bytes == 8 * 2 * 2
        assert gemm.output_bytes == 4 * 2 * 2

    def test_bytes_compressed(self):
        gemm = GemmTrace(name="fc1", layer=0, m=4, k=64, n=32,
                         input_unique=3, vector_size=32, input_map_bits=80,
                         output_compressed_rows=2, output_map_bits=40)
        assert gemm.input_bytes == 3 * 32 * 2 + 10
        assert gemm.output_bytes == 2 * 32 * 2 + 5

    def test_trace_merge(self):
        a = ModelTrace()
        a.add(GemmTrace(name="fc1", layer=0, m=1, k=1, n=1))
        a.initial_tokens = 10
        b = ModelTrace(preprocess_macs=5, sic_comparisons=3)
        b.add(GemmTrace(name="fc2", layer=0, m=2, k=2, n=2))
        b.initial_tokens = 10
        a.merge(b)
        assert len(a.gemms) == 2
        assert a.preprocess_macs == 5
        assert a.sic_comparisons == 3
        assert a.initial_tokens == 20


class TestSystolic:
    def test_dense_cycles_formula(self):
        # One 32x32 weight tile: fill + stream + drain.
        assert dense_gemm_cycles(100, 32, 32, 32, 32) == 100 + 63

    def test_tiling_multiplies(self):
        single = dense_gemm_cycles(100, 32, 32, 32, 32)
        assert dense_gemm_cycles(100, 64, 64, 32, 32) == 4 * single

    def test_zero_dims(self):
        assert dense_gemm_cycles(0, 32, 32, 32, 32) == 0

    def test_concentrated_fewer_cycles(self):
        dense = GemmTrace(name="fc1", layer=0, m=1024, k=64, n=32)
        sparse = GemmTrace(name="fc1", layer=0, m=1024, k=64, n=32,
                           input_unique=256, vector_size=32)
        assert (concentrated_gemm_cycles(sparse, 32, 32)
                < concentrated_gemm_cycles(dense, 32, 32))

    def test_concentrated_matches_dense_when_no_dedup(self):
        gemm = GemmTrace(name="fc1", layer=0, m=100, k=32, n=32)
        assert concentrated_gemm_cycles(gemm, 32, 32) == \
            dense_gemm_cycles(100, 32, 32, 32, 32)

    def test_utilization_bounded(self):
        gemm = GemmTrace(name="fc1", layer=0, m=1000, k=64, n=64)
        util = gemm_utilization(gemm, 32, 32)
        assert 0 < util <= 1

    def test_tile_utilization_monotone(self):
        values = [tile_utilization(n, 32, 32) for n in (8, 64, 512, 1024)]
        assert values == sorted(values)
        assert tile_utilization(0, 32, 32) == 0.0


class TestArchAndArea:
    def test_table3_totals(self):
        """Table III: 3.12 / 3.38 / 3.58 / 3.21 mm^2."""
        assert total_area_mm2(SYSTOLIC) == pytest.approx(3.12, abs=0.02)
        assert total_area_mm2(ADAPTIV) == pytest.approx(3.38, abs=0.02)
        assert total_area_mm2(CMC) == pytest.approx(3.58, abs=0.02)
        assert total_area_mm2(FOCUS) == pytest.approx(3.21, abs=0.02)

    def test_focus_overhead_small(self):
        """The Focus Unit adds ~2.7% area over the vanilla array."""
        assert focus_overhead_fraction() == pytest.approx(0.027, abs=0.01)

    def test_buffer_totals(self):
        assert SYSTOLIC.buffer_kb == pytest.approx(734)
        assert FOCUS.buffer_kb == pytest.approx(734)
        assert ADAPTIV.buffer_kb == pytest.approx(768)
        assert CMC.buffer_kb == pytest.approx(907)

    def test_same_pe_count(self):
        counts = {arch.num_pes for arch in ARCH_CONFIGS.values()}
        assert counts == {1024}

    def test_breakdown_components(self):
        parts = area_breakdown(FOCUS)
        assert {"systolic_array", "buffer", "sfu", "sec", "sic"} == set(parts)
        total = sum(parts.values())
        assert parts["sec"] / total == pytest.approx(0.019, abs=0.005)
        assert parts["sic"] / total == pytest.approx(0.008, abs=0.004)

    def test_invalid_compression(self):
        with pytest.raises(ValueError):
            ArchConfig(name="x", compression="zip")


class TestDram:
    def test_transfer_time(self):
        dram = DramModel(bandwidth_gbs=64, efficiency=1.0)
        assert dram.transfer_seconds(64e9) == pytest.approx(1.0)

    def test_efficiency_derates(self):
        fast = DramModel(bandwidth_gbs=64, efficiency=1.0)
        slow = DramModel(bandwidth_gbs=64, efficiency=0.5)
        assert slow.transfer_seconds(1e9) == 2 * fast.transfer_seconds(1e9)

    def test_energy_includes_static(self):
        dram = DramModel()
        dynamic_only = dram.energy_j(1e9)
        with_static = dram.energy_j(1e9, runtime_s=1.0)
        assert with_static == pytest.approx(
            dynamic_only + dram.static_power_w
        )

    def test_zero_bytes(self):
        assert DramModel().transfer_seconds(0) == 0.0


class TestBuffers:
    def test_table1_tiling_fits_focus(self):
        requirement = tiling_requirement(
            m_tile=1024, n_tile=32, k_tile=32, hidden=3584
        )
        assert fits(FOCUS, requirement)

    def test_oversized_tile_does_not_fit(self):
        requirement = tiling_requirement(
            m_tile=64 * 1024, n_tile=32, k_tile=32, hidden=3584
        )
        assert not fits(FOCUS, requirement)

    def test_output_buffer_scaling(self):
        assert output_buffer_kb_for_tile(1024) == 256.0
        assert output_buffer_kb_for_tile(512) == 128.0


class TestFocusUnit:
    def test_sorter_formula_matches_core(self):
        for m, k, a in ((100, 8, 4), (57, 13, 32), (6272, 627, 32)):
            assert _sorter_cycles(m, k, a) == core_sorter_cycles(m, k, a)

    def test_sec_sorter_cycles(self):
        events = [SecEvent(layer=1, candidates=100, selected=32)]
        assert sec_sorter_cycles(events, lanes=32) == 100

    def test_matcher_cycles(self):
        trace = ModelTrace(sic_comparisons=70, tile_lengths=[10])
        assert sic_matcher_cycles(trace) == 80

    def test_scatter_cycles_scale_with_lanes(self):
        trace = ModelTrace()
        trace.add(GemmTrace(name="fc1", layer=0, m=8, k=8, n=8,
                            scatter_ops=640))
        assert scatter_cycles(trace, accumulators=64) == 10
        assert scatter_cycles(trace, accumulators=32) == 20
        with pytest.raises(ValueError):
            scatter_cycles(trace, accumulators=0)

    def test_sorter_hidden_under_attention(self):
        """Sec. V-B: the sorter finishes before Q(i)K^T does."""
        trace = ModelTrace()
        trace.add(GemmTrace(name="qk", layer=1, m=400, k=192, n=400))
        trace.sec_events.append(SecEvent(layer=1, candidates=400,
                                         selected=100))
        activity = focus_unit_activity(trace)
        assert activity.exposed_cycles == 0

    def test_energy_positive(self):
        trace = ModelTrace(sic_comparisons=100, tile_lengths=[5])
        trace.add(GemmTrace(name="fc1", layer=0, m=8, k=8, n=8,
                            scatter_ops=64))
        assert focus_unit_activity(trace).energy_j > 0


class TestSimulator:
    def _trace(self, m=256, concentrated=False):
        trace = ModelTrace(initial_tokens=m)
        kwargs = {}
        if concentrated:
            kwargs = dict(input_unique=m, vector_size=32,
                          input_map_bits=m * 10)
        trace.add(GemmTrace(name="qkv", layer=0, m=m, k=64, n=192, **kwargs))
        trace.add(GemmTrace(name="qk", layer=0, m=m, k=64, n=m))
        trace.add(GemmTrace(name="pv", layer=0, m=m, k=m, n=64))
        trace.add(GemmTrace(name="fc2", layer=0, m=m, k=192, n=64))
        return trace

    def test_dense_simulation(self):
        result = simulate(self._trace(), SYSTOLIC)
        assert result.cycles > 0
        assert result.dram_bytes > 0
        assert result.energy.total_j > 0

    def test_concentration_reduces_cycles(self):
        dense = simulate(self._trace(), SYSTOLIC)
        focus = simulate(self._trace(concentrated=True), FOCUS)
        assert focus.compute_cycles < dense.compute_cycles

    def test_attention_matrices_stay_on_chip(self):
        trace = ModelTrace(initial_tokens=128)
        trace.add(GemmTrace(name="qk", layer=0, m=128, k=64, n=128))
        result = simulate(trace, SYSTOLIC)
        # Only Q and K move; the score matrix does not.
        q_bytes = 128 * 64 * 2
        k_bytes = 64 * 128 * 2
        assert result.activation_dram_bytes == q_bytes + k_bytes

    def test_cmc_restores_full_outputs(self):
        reduced = ModelTrace(initial_tokens=256)
        reduced.add(GemmTrace(name="fc1", layer=0, m=128, k=64, n=64))
        cmc = simulate(reduced, CMC)
        systolic = simulate(reduced, SYSTOLIC)
        assert cmc.dram_bytes > systolic.dram_bytes

    def test_accumulate(self):
        a = simulate(self._trace(), SYSTOLIC)
        total = simulate(self._trace(), SYSTOLIC)
        total.accumulate(a)
        assert total.samples == 2
        assert total.cycles == 2 * a.cycles

    def test_accumulate_arch_mismatch(self):
        a = simulate(self._trace(), SYSTOLIC)
        b = simulate(self._trace(concentrated=True), FOCUS)
        with pytest.raises(ValueError):
            a.accumulate(b)

    def test_simulate_many_empty(self):
        result = simulate_many([], SYSTOLIC)
        assert result.cycles == 0

    def test_utilization_bounded(self):
        result = simulate(self._trace(), SYSTOLIC)
        assert 0 < result.utilization(SYSTOLIC.num_pes) <= 1


class TestScaling:
    def test_factors(self):
        factors = ScaleFactors.for_sample(404, 192)
        assert factors.token == pytest.approx(6381 / 404)
        assert factors.hidden == pytest.approx(3584 / 192)

    def test_gemm_dims_scale_by_kind(self):
        factors = ScaleFactors(token=2.0, hidden=4.0)
        qk = scale_gemm(GemmTrace(name="qk", layer=0, m=10, k=16, n=10),
                        factors)
        assert (qk.m, qk.k, qk.n) == (20, 64, 20)
        fc1 = scale_gemm(GemmTrace(name="fc1", layer=0, m=10, k=16, n=48),
                         factors)
        assert (fc1.m, fc1.k, fc1.n) == (20, 64, 192)

    def test_unique_fraction_preserved(self):
        factors = ScaleFactors(token=4.0, hidden=2.0)
        gemm = GemmTrace(name="fc1", layer=0, m=64, k=64, n=64,
                         input_unique=64, vector_size=32)
        scaled = scale_gemm(gemm, factors)
        original_fraction = gemm.input_unique / (gemm.m * gemm.k_blocks)
        scaled_fraction = scaled.input_unique / (scaled.m * scaled.k_blocks)
        assert scaled_fraction == pytest.approx(original_fraction, rel=0.05)

    def test_scale_to_paper_trace(self, tiny_model, tiny_sample):
        trace = tiny_model.forward(tiny_sample).trace
        scaled = scale_to_paper(trace, tiny_model.config.hidden)
        assert scaled.total_macs > trace.total_macs
        assert len(scaled.gemms) == len(trace.gemms)
        assert scaled.initial_tokens == 6381
