"""Tests for repro.workloads.video (the synthetic vision encoder)."""

import numpy as np
import pytest

from repro.workloads.scene import random_scene
from repro.workloads.video import RenderParams, render_video, token_positions


@pytest.fixture(scope="module")
def rendered(tiny_codebooks):
    scene = random_scene(3, 4, 4, 2, seed=9)
    tokens = render_video(scene, tiny_codebooks, RenderParams(), seed=9)
    return scene, tokens


class TestRender:
    def test_shape(self, rendered, tiny_layout):
        scene, tokens = rendered
        assert tokens.shape == (scene.num_visual_tokens, tiny_layout.hidden)

    def test_deterministic(self, tiny_codebooks):
        scene = random_scene(2, 4, 4, 2, seed=4)
        a = render_video(scene, tiny_codebooks, RenderParams(), seed=4)
        b = render_video(scene, tiny_codebooks, RenderParams(), seed=4)
        np.testing.assert_array_equal(a, b)

    def test_fhw_order(self, rendered):
        scene, _ = rendered
        positions = token_positions(scene)
        width = scene.grid_width
        height = scene.grid_height
        linear = (positions[:, 0] * height * width
                  + positions[:, 1] * width + positions[:, 2])
        np.testing.assert_array_equal(linear, np.arange(len(linear)))

    def test_object_kind_present_in_object_patch(self, tiny_codebooks,
                                                 tiny_layout):
        scene = random_scene(1, 6, 6, 1, seed=11)
        tokens = render_video(scene, tiny_codebooks, RenderParams(), seed=11)
        obj = scene.objects[0]
        from repro.workloads.scene import coverage_map
        cover = coverage_map(scene, 0)[0].ravel()
        best = int(np.argmax(cover))
        patch_obj = tokens[best][tiny_layout.object_slice]
        sim = patch_obj @ tiny_codebooks.kind_codes[obj.kind_index]
        assert sim > 0.5

    def test_temporal_redundancy_of_background(self, tiny_codebooks,
                                               tiny_layout):
        # Co-located background patches across frames must be highly
        # similar in the texture sub-space.
        scene = random_scene(2, 6, 6, 1, seed=13)
        tokens = render_video(scene, tiny_codebooks, RenderParams(), seed=13)
        from repro.workloads.scene import coverage_map
        cover = np.maximum(coverage_map(scene, 0).sum(0),
                           coverage_map(scene, 1).sum(0)).ravel()
        background = np.nonzero(cover == 0)[0]
        assert background.size > 0
        per_frame = tokens.reshape(2, 36, -1)
        tex = tiny_layout.texture_slice
        sims = []
        for patch in background:
            a = per_frame[0, patch][tex]
            b = per_frame[1, patch][tex]
            sims.append(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert np.median(sims) > 0.7

    def test_background_residue_nonzero(self, tiny_codebooks, tiny_layout):
        scene = random_scene(1, 6, 6, 1, seed=17)
        tokens = render_video(scene, tiny_codebooks, RenderParams(), seed=17)
        from repro.workloads.scene import coverage_map
        cover = coverage_map(scene, 0)[0].ravel()
        background = int(np.argmin(cover))
        obj_part = tokens[background][tiny_layout.object_slice]
        assert np.linalg.norm(obj_part) > 0.05


class TestTokenPositions:
    def test_shape_and_range(self, rendered):
        scene, _ = rendered
        positions = token_positions(scene)
        assert positions.shape == (scene.num_visual_tokens, 3)
        assert positions[:, 0].max() == scene.num_frames - 1
        assert positions[:, 1].max() == scene.grid_height - 1
        assert positions[:, 2].max() == scene.grid_width - 1
