"""Integration tests: algorithm -> trace -> simulator, end to end.

These assert the *shape* claims of the paper on a small but complete
pipeline: Focus reaches the highest sparsity, runs fastest on its
hardware, and moves the least memory — while answering questions as
well as the dense model.
"""

import numpy as np
import pytest

from repro.accel.arch import CMC, FOCUS, SYSTOLIC
from repro.accel.scaling import scale_to_paper
from repro.accel.simulator import simulate_many
from repro.config import FocusConfig
from repro.core.gather import SimilarityGather
from repro.core.pipeline import FocusPlugin
from repro.core.scatter import gathered_gemm
from repro.eval.metrics import computation_sparsity
from repro.eval.runner import evaluate_samples


@pytest.fixture(scope="module")
def focus_config():
    return FocusConfig(m_tile=64)


@pytest.fixture(scope="module")
def all_results(tiny_model, tiny_samples):
    config = FocusConfig(m_tile=64)
    return {
        method: evaluate_samples(tiny_model, tiny_samples, method, config)
        for method in ("dense", "framefusion", "adaptiv", "cmc", "focus")
    }


class TestSparsityOrdering:
    def test_focus_beats_token_level_baselines(self, all_results):
        assert all_results["focus"].sparsity > all_results["adaptiv"].sparsity
        assert all_results["focus"].sparsity > all_results["cmc"].sparsity

    def test_dense_has_zero_sparsity(self, all_results):
        assert all_results["dense"].sparsity == pytest.approx(0.0, abs=1e-6)

    def test_all_methods_answer_reasonably(self, all_results):
        dense_acc = all_results["dense"].accuracy
        for method, result in all_results.items():
            assert result.accuracy >= dense_acc - 50.0, method


class TestHardwarePipeline:
    def test_focus_fastest_at_paper_scale(self, tiny_model, all_results):
        hidden = tiny_model.config.hidden
        sims = {}
        for method, arch in (("dense", SYSTOLIC), ("cmc", CMC),
                             ("focus", FOCUS)):
            scaled = [
                scale_to_paper(t, hidden)
                for t in all_results[method].traces
            ]
            sims[method] = simulate_many(scaled, arch)
        assert sims["focus"].cycles < sims["cmc"].cycles
        assert sims["cmc"].cycles < sims["dense"].cycles

    def test_focus_least_energy(self, tiny_model, all_results):
        hidden = tiny_model.config.hidden
        energies = {}
        for method, arch in (("dense", SYSTOLIC), ("focus", FOCUS)):
            scaled = [
                scale_to_paper(t, hidden)
                for t in all_results[method].traces
            ]
            energies[method] = simulate_many(scaled, arch).energy.total_j
        assert energies["focus"] < energies["dense"]

    def test_focus_least_activation_traffic(self, tiny_model, all_results):
        hidden = tiny_model.config.hidden
        traffic = {}
        for method, arch in (("dense", SYSTOLIC), ("cmc", CMC),
                             ("focus", FOCUS)):
            scaled = [
                scale_to_paper(t, hidden)
                for t in all_results[method].traces
            ]
            traffic[method] = simulate_many(
                scaled, arch
            ).activation_dram_bytes
        assert traffic["focus"] < traffic["cmc"] <= traffic["dense"]


class TestNumericalEquivalence:
    def test_scatter_equals_plugin_approximation(self, tiny_model,
                                                 tiny_sample, focus_config):
        """The hardware execution path (concentrated GEMM + scatter)
        produces exactly the activations the plugin feeds the model."""
        gather_engine = SimilarityGather(focus_config)
        state = tiny_model.initial_state(tiny_sample)
        from repro.model.functional import rms_norm
        x = rms_norm(state.hidden)
        result = gather_engine.gather(
            x, state.positions, state.is_text, state.grid
        )
        weight = tiny_model.layers[0].wq
        hardware = gathered_gemm(x, weight, result)
        reference = result.x_approx @ weight
        np.testing.assert_allclose(hardware, reference, rtol=1e-4,
                                   atol=1e-5)

    def test_focus_trace_macs_below_dense(self, tiny_model, tiny_sample,
                                          focus_config):
        dense = tiny_model.forward(tiny_sample)
        focus = tiny_model.forward(
            tiny_sample, FocusPlugin(tiny_model, focus_config)
        )
        assert focus.trace.total_macs < dense.trace.total_macs

    def test_sparsity_composition(self, tiny_model, tiny_sample,
                                  focus_config):
        """SEC + SIC sparsity exceeds each alone (Fig. 11 logic)."""
        def sparsity(**kwargs):
            plugin = FocusPlugin(tiny_model, focus_config, **kwargs)
            result = tiny_model.forward(tiny_sample, plugin)
            return computation_sparsity(result.trace, tiny_model.config,
                                        tiny_sample)
        both = sparsity()
        assert both >= sparsity(enable_sic=False)
        assert both >= sparsity(enable_sec=False)


class TestWorstAndBestCase:
    """Sec. VIII-B robustness extremes."""

    def test_incompressible_input_runs_dense(self, tiny_model, tiny_layout,
                                             focus_config, rng):
        """No similarity at all: SIC stores every vector; correctness
        is preserved and the tile never overflows (worst case)."""
        from repro.core.blocks import build_neighbor_table
        from repro.core.matching import SimilarityMatcher

        x = rng.standard_normal((16, tiny_layout.hidden)).astype(np.float32)
        positions = np.array([[0, r, c] for r in range(4) for c in range(4)])
        matcher = SimilarityMatcher(0.9)
        table = build_neighbor_table(positions, (1, 4, 4), (1, 2, 2))
        outcome = matcher.match_tile(
            matcher.split_blocks(x, 32), table
        )
        own = np.arange(16)
        assert (outcome.reps == own[None, :]).all()

    def test_fully_redundant_input_collapses(self, tiny_layout,
                                             focus_config):
        """Perfect similarity: each tile collapses to one vector per
        k-block (best case)."""
        row = np.ones(tiny_layout.hidden, dtype=np.float32)
        x = np.tile(row, (9, 1))
        positions = np.array([[0, r, c] for r in range(3) for c in range(3)])
        gather = SimilarityGather(focus_config)
        result = gather.gather(x, positions, np.zeros(9, dtype=bool),
                               (1, 3, 3))
        assert set(result.tile_lengths) == {1}
