"""Tests for the load harness (:mod:`repro.load`).

Pins the virtual-clock determinism contract (identical seeds →
identical timelines, percentiles, and histograms), the closed-loop
concurrency cap (a property test over the recorded timeline), and the
trace format's validation surface.  Wall-clock threading is exercised
against the deterministic :class:`VirtualTransport` — any transport
works in wall mode, so no server is needed here (``test_serve.py``
and the benchmarks cover real HTTP).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.load import (
    HISTOGRAM_EDGES_MS,
    LoadRequest,
    TraceError,
    VirtualTransport,
    latency_histogram,
    poisson_trace,
    read_trace,
    run_closed_loop,
    run_open_loop,
    write_trace,
)
from repro.load.harness import RequestRecord, _peak_overlap, _percentile


class TestVirtualDeterminism:
    def test_open_loop_reproduces_identical_reports(self):
        trace = poisson_trace(rate=20.0, duration_s=1.0, seed=7,
                              burst_size=2)
        assert trace  # non-degenerate schedule
        reports = [
            run_open_loop(trace, VirtualTransport(seed=7), virtual=True)
            for _ in range(2)
        ]
        assert reports[0].records == reports[1].records
        assert reports[0].summary() == reports[1].summary()
        assert sum(reports[0].summary()["histogram_ms"]["counts"]) == \
            len(trace)

    def test_closed_loop_reproduces_identical_reports(self):
        template = LoadRequest(subscribers=3)
        reports = [
            run_closed_loop([template], concurrency=4,
                            transport=VirtualTransport(seed=5),
                            think_s=0.01, max_requests=24, virtual=True)
            for _ in range(2)
        ]
        assert reports[0].records == reports[1].records
        assert reports[0].summary() == reports[1].summary()

    def test_different_seeds_differ(self):
        template = LoadRequest()
        a = run_closed_loop([template], 2, VirtualTransport(seed=0),
                            max_requests=8)
        b = run_closed_loop([template], 2, VirtualTransport(seed=1),
                            max_requests=8)
        assert a.records != b.records

    def test_summary_shape(self):
        report = run_closed_loop([LoadRequest(subscribers=2)], 2,
                                 VirtualTransport(), max_requests=6)
        summary = report.summary()
        assert summary["mode"] == "closed"
        assert summary["clock"] == "virtual"
        assert summary["requests"] == 6
        assert summary["failed"] == 0
        assert summary["latency_ms"]["p50"] > 0
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]
        assert summary["ttfe_ms"]["p50"] > 0
        assert summary["ttfe_ms"]["p50"] < summary["latency_ms"]["p50"]
        assert summary["fanout"]["subscribers"] == 2
        assert summary["fanout"]["events"] == 6 * 12 * 2
        assert summary["concurrency"]["cap"] == 2
        assert 1 <= summary["concurrency"]["peak"] <= 2
        assert len(summary["histogram_ms"]["counts"]) == \
            len(HISTOGRAM_EDGES_MS)
        assert sum(summary["histogram_ms"]["counts"]) == 6

    def test_open_loop_preserves_arrival_schedule(self):
        trace = poisson_trace(rate=10.0, duration_s=2.0, seed=3)
        report = run_open_loop(trace, VirtualTransport(seed=3),
                               virtual=True)
        assert [r.start_s for r in report.records] == \
            [request.at_s for request in trace]


class TestClosedLoopConcurrencyCap:
    @settings(max_examples=20, deadline=None)
    @given(
        concurrency=st.integers(1, 6),
        max_requests=st.integers(1, 30),
        think_ms=st.sampled_from([0, 5, 50]),
        seed=st.integers(0, 3),
    )
    def test_virtual_peak_never_exceeds_cap(
        self, concurrency, max_requests, think_ms, seed
    ):
        report = run_closed_loop(
            [LoadRequest()], concurrency,
            VirtualTransport(seed=seed), think_s=think_ms / 1e3,
            max_requests=max_requests, virtual=True,
        )
        assert len(report.records) == max_requests
        assert report.concurrency_peak <= concurrency
        # Recompute from the recorded timeline — the report's peak is
        # derived the same way, so cross-check against the records.
        peak = _peak_overlap(
            [(r.start_s, r.start_s + r.latency_s) for r in report.records]
        )
        assert peak <= concurrency

    def test_wall_peak_never_exceeds_cap(self):
        report = run_closed_loop(
            [LoadRequest()], concurrency=3,
            transport=VirtualTransport(seed=0, base_s=0.002,
                                       jitter_s=0.001),
            max_requests=12, virtual=False,
        )
        assert report.clock == "wall"
        assert len(report.records) == 12
        assert {r.index for r in report.records} == set(range(12))
        assert report.concurrency_peak <= 3
        assert all(r.ok for r in report.records)

    def test_wall_open_loop_with_virtual_transport(self):
        trace = [LoadRequest(at_s=i * 0.002) for i in range(6)]
        report = run_open_loop(
            trace, VirtualTransport(seed=1, base_s=0.001,
                                    jitter_s=0.0005),
            virtual=False,
        )
        assert report.mode == "open"
        assert len(report.records) == 6
        assert all(r.ok for r in report.records)
        assert report.wall_s > 0

    def test_wall_mode_records_failures(self):
        calls = [0]

        def flaky(request, key):
            calls[0] += 1
            if calls[0] % 2:
                raise RuntimeError("boom")
            return 0.001, 0.002, 1

        report = run_closed_loop([LoadRequest()], 1, flaky,
                                 max_requests=4, virtual=False)
        summary = report.summary()
        assert summary["failed"] == 2
        assert any("boom" in error for error in summary["errors"])

    def test_rejects_degenerate_arguments(self):
        with pytest.raises(ValueError):
            run_closed_loop([LoadRequest()], 0, VirtualTransport())
        with pytest.raises(ValueError):
            run_closed_loop([LoadRequest()], 1, VirtualTransport(),
                            max_requests=0)
        with pytest.raises(ValueError):
            run_closed_loop([], 1, VirtualTransport())


class TestHistogramAndPercentiles:
    def test_percentile_ordering(self):
        values = [float(v) for v in range(1, 101)]
        p50 = _percentile(values, 50)
        p95 = _percentile(values, 95)
        p99 = _percentile(values, 99)
        assert p50 < p95 < p99
        assert _percentile([], 50) is None

    def test_histogram_bins_and_overflow(self):
        def rec(latency_s, ok=True):
            return RequestRecord(index=0, start_s=0.0, ttfe_s=None,
                                 latency_s=latency_s, events=0,
                                 subscribers=1, ok=ok)

        counts = latency_histogram([
            rec(0.0005),   # 0.5ms -> first bin (<= 1ms)
            rec(0.003),    # 3ms -> <= 5ms bin
            rec(500.0),    # 500s -> overflow bin
            rec(None, ok=False),  # failed: not counted
        ])
        assert counts[0] == 1
        assert counts[HISTOGRAM_EDGES_MS.index(5.0)] == 1
        assert counts[-1] == 1
        assert sum(counts) == 3

    def test_peak_overlap_touching_intervals(self):
        # end == start does not overlap (back-to-back worker requests).
        assert _peak_overlap([(0, 1), (1, 2), (2, 3)]) == 1
        assert _peak_overlap([(0, 2), (1, 3)]) == 2
        assert _peak_overlap([]) == 0


class TestTraces:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        requests = [
            LoadRequest(at_s=0.5, experiments=("fig13",), samples=2,
                        seed=3, subscribers=2),
            LoadRequest(at_s=0.1, experiments=("scenario",),
                        scenario="mtconv:seed=0,history=4,"
                                 "profile=videomme,turns=4"),
        ]
        write_trace(path, requests)
        loaded = read_trace(path)
        # read_trace sorts by arrival time.
        assert loaded == sorted(requests, key=lambda r: r.at_s)

    def test_request_spec_shape(self):
        spec = LoadRequest(experiments=("scenario",), samples=4, seed=2,
                           scenario="mtconv").spec()
        assert spec == {"experiments": ["scenario"], "seed": 2,
                        "samples": 4, "scenario": "mtconv"}

    @pytest.mark.parametrize("record, fragment", [
        ("[]", "JSON object"),
        ('{"at_s": -1}', "at_s"),
        ('{"at_s": true}', "at_s"),
        ('{"experiments": []}', "experiments"),
        ('{"experiments": "fig13"}', "experiments"),
        ('{"samples": 0}', "samples"),
        ('{"samples": true}', "samples"),
        ('{"seed": "x"}', "seed"),
        ('{"scenario": 7}', "scenario"),
        ('{"subscribers": 0}', "subscribers"),
        ('{"bogus": 1}', "unknown fields"),
    ])
    def test_bad_records_raise(self, tmp_path, record, fragment):
        path = tmp_path / "bad.jsonl"
        path.write_text(record + "\n", encoding="utf-8")
        with pytest.raises(TraceError, match=fragment):
            read_trace(path)

    def test_invalid_json_empty_and_unreadable(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(TraceError, match="invalid JSON"):
            read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n\n", encoding="utf-8")
        with pytest.raises(TraceError, match="empty trace"):
            read_trace(empty)
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(tmp_path / "missing.jsonl")

    def test_defaults_fill_in(self, tmp_path):
        path = tmp_path / "minimal.jsonl"
        path.write_text("{}\n", encoding="utf-8")
        request, = read_trace(path)
        assert request == LoadRequest()

    def test_poisson_trace_deterministic_and_bursty(self):
        a = poisson_trace(rate=16.0, duration_s=2.0, seed=1,
                          burst_size=4)
        b = poisson_trace(rate=16.0, duration_s=2.0, seed=1,
                          burst_size=4)
        assert a == b
        assert len(a) % 4 == 0
        arrivals = [request.at_s for request in a]
        assert arrivals == sorted(arrivals)
        assert all(0 < at < 2.0 for at in arrivals)
        # Bursts share one epoch timestamp.
        assert arrivals[0] == arrivals[3]
        with pytest.raises(ValueError):
            poisson_trace(rate=0.0, duration_s=1.0)

    def test_trace_json_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, [LoadRequest(at_s=1.5, subscribers=3)])
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["at_s"] == 1.5
        assert record["subscribers"] == 3
