"""Property-based tests on the core data structures and invariants.

These use hypothesis to probe the concentration pipeline with
arbitrary data: whatever the input, the structural invariants of the
paper's design must hold (representatives precede their followers,
gather never grows the data, scatter reconstructs exactly, banks never
conflict, top-k is order-consistent).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FocusConfig
from repro.core.blocks import build_neighbor_table
from repro.core.gather import SimilarityGather
from repro.core.layouter import ConvolutionLayouter
from repro.core.matching import SimilarityMatcher
from repro.core.offsets import decode_offsets, encode_offsets
from repro.core.scatter import gathered_gemm, scatter_counts
from repro.core.topk import top_k_indices

grids = st.tuples(
    st.integers(1, 3), st.integers(1, 4), st.integers(1, 4)
)


def _positions(grid):
    frames, height, width = grid
    return np.array([
        [f, r, c]
        for f in range(frames) for r in range(height) for c in range(width)
    ])


@st.composite
def tile_inputs(draw):
    grid = draw(grids)
    frames, height, width = grid
    n = frames * height * width
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    k = draw(st.sampled_from([8, 16]))
    x = rng.standard_normal((n, k)).astype(np.float32)
    # Sometimes inject exact duplicates to force matches.
    if draw(st.booleans()) and n > 1:
        x[n // 2:] = x[: n - n // 2]
    return grid, x


class TestMatcherInvariants:
    @given(tile_inputs(), st.floats(0.5, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_representatives_precede_followers(self, data, threshold):
        grid, x = data
        positions = _positions(grid)
        matcher = SimilarityMatcher(threshold)
        table = build_neighbor_table(positions, grid, (2, 2, 2))
        outcome = matcher.match_tile(matcher.split_blocks(x, 4), table)
        n = x.shape[0]
        for b in range(outcome.reps.shape[0]):
            for i in range(n):
                assert outcome.reps[b, i] <= i

    @given(tile_inputs())
    @settings(max_examples=40, deadline=None)
    def test_representatives_are_roots(self, data):
        """A representative always represents itself (compact-buffer
        entries are never themselves aliases)."""
        grid, x = data
        positions = _positions(grid)
        matcher = SimilarityMatcher(0.9)
        table = build_neighbor_table(positions, grid, (2, 2, 2))
        outcome = matcher.match_tile(matcher.split_blocks(x, 4), table)
        for b in range(outcome.reps.shape[0]):
            reps = outcome.reps[b]
            for i in range(x.shape[0]):
                assert reps[reps[i]] == reps[i]

    @given(tile_inputs())
    @settings(max_examples=30, deadline=None)
    def test_unique_counts_bounds(self, data):
        grid, x = data
        positions = _positions(grid)
        matcher = SimilarityMatcher(0.9)
        table = build_neighbor_table(positions, grid, (2, 2, 2))
        outcome = matcher.match_tile(matcher.split_blocks(x, 4), table)
        counts = outcome.unique_counts()
        assert (counts >= 1).all()
        assert (counts <= x.shape[0]).all()


class TestGatherScatterInvariants:
    @given(tile_inputs())
    @settings(max_examples=30, deadline=None)
    def test_gather_never_grows(self, data):
        grid, x = data
        positions = _positions(grid)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(x.shape[0], dtype=bool), grid
        )
        assert result.unique_total <= result.total_vectors
        assert result.compression_ratio >= 1.0

    @given(tile_inputs())
    @settings(max_examples=30, deadline=None)
    def test_scatter_reconstructs_exactly(self, data):
        grid, x = data
        positions = _positions(grid)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(x.shape[0], dtype=bool), grid
        )
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((x.shape[1], 5)).astype(np.float32)
        np.testing.assert_allclose(
            gathered_gemm(x, weight, result),
            result.x_approx @ weight,
            rtol=1e-4, atol=1e-4,
        )

    @given(tile_inputs())
    @settings(max_examples=30, deadline=None)
    def test_scatter_counts_partition_rows(self, data):
        grid, x = data
        positions = _positions(grid)
        config = FocusConfig(vector_size=4)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(x.shape[0], dtype=bool), grid
        )
        counts = scatter_counts(result)
        assert counts.sum() == x.shape[0] * result.reps.shape[0]
        assert len(counts) == result.unique_total

    @given(tile_inputs(), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_tile_isolation(self, data, m_tile):
        """Representatives never cross an m-tile boundary."""
        grid, x = data
        positions = _positions(grid)
        config = FocusConfig(vector_size=4, m_tile=m_tile)
        result = SimilarityGather(config).gather(
            x, positions, np.zeros(x.shape[0], dtype=bool), grid
        )
        for b in range(result.reps.shape[0]):
            for i in range(x.shape[0]):
                assert result.reps[b, i] // m_tile == i // m_tile


class TestLayouterInvariants:
    @given(grids, st.integers(1, 3), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_all_tokens_all_windows_conflict_free(self, grid, bf, bh, bw):
        frames, height, width = grid
        layouter = ConvolutionLayouter((bf, bh, bw), frame_width=width)
        for position in _positions(grid):
            assert layouter.is_conflict_free(tuple(position))

    @given(grids)
    @settings(max_examples=30, deadline=None)
    def test_bank_count_respected(self, grid):
        frames, height, width = grid
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=width)
        addresses = layouter.addresses(_positions(grid))
        assert (addresses[:, 0] >= 0).all()
        assert (addresses[:, 0] < layouter.num_banks).all()


class TestSelectionInvariants:
    @given(st.lists(st.floats(-100, 100, allow_nan=False, width=32),
                    min_size=1, max_size=60),
           st.integers(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_topk_contains_maximum(self, values, k):
        scores = np.array(values, dtype=np.float32)
        chosen = top_k_indices(scores, min(k, len(values)))
        assert int(np.argmax(scores)) in set(int(i) for i in chosen)

    @given(st.lists(st.floats(-100, 100, allow_nan=False, width=32),
                    min_size=2, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_topk_nested(self, values):
        scores = np.array(values, dtype=np.float32)
        k = len(values) // 2
        smaller = set(int(i) for i in top_k_indices(scores, k))
        larger = set(int(i) for i in top_k_indices(scores, k + 1))
        assert smaller <= larger

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_offsets_total_order(self, indices):
        ordered = np.array(sorted(indices), dtype=np.int64)
        deltas = encode_offsets(ordered)
        assert (deltas > 0).all()
        np.testing.assert_array_equal(decode_offsets(deltas), ordered)
