"""Tests for repro.model (spec, weights, forward engine)."""

import numpy as np
import pytest

from repro.model.plugins import InferencePlugin
from repro.model.spec import ModelConfig
from repro.model.vlm import SyntheticVLM
from repro.model.weights import build_all_weights, build_layer_weights
from repro.model.zoo import MODEL_CONFIGS, VIDEO_MODELS, get_model_config


class TestModelConfig:
    def test_head_dim(self, tiny_model_config):
        assert tiny_model_config.head_dim == 32

    def test_rejects_bad_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden=60)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", hidden=64, num_heads=3)

    def test_dense_macs_positive_and_monotone(self, tiny_model_config):
        small = tiny_model_config.dense_macs(10, 5)
        large = tiny_model_config.dense_macs(20, 5)
        assert 0 < small < large

    def test_dense_macs_formula(self):
        config = ModelConfig(name="t", hidden=64, num_layers=1, num_heads=2,
                             ffn_mult=3)
        s, d, f = 10, 64, 192
        expected = s*d*3*d + s*d*s + s*s*d + s*d*d + 2*s*d*f
        assert config.dense_macs(8, 2) == expected


class TestZoo:
    def test_video_models_registered(self):
        for name in VIDEO_MODELS:
            assert name in MODEL_CONFIGS

    def test_head_dim_is_vector_size(self):
        for config in MODEL_CONFIGS.values():
            assert config.head_dim == 32

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_config("gpt-5")

    def test_models_have_distinct_seeds(self):
        seeds = [c.seed for c in MODEL_CONFIGS.values()]
        assert len(set(seeds)) == len(seeds)


class TestWeights:
    def test_shapes(self, tiny_model_config):
        w = build_layer_weights(tiny_model_config, 0)
        d = tiny_model_config.hidden
        assert w.wq.shape == (d, d)
        assert w.w_fc1.shape == (d, tiny_model_config.ffn_hidden)
        assert w.w_fc2.shape == (tiny_model_config.ffn_hidden, d)

    def test_deterministic(self, tiny_model_config):
        a = build_layer_weights(tiny_model_config, 1)
        b = build_layer_weights(tiny_model_config, 1)
        np.testing.assert_array_equal(a.wq, b.wq)

    def test_layers_differ(self, tiny_model_config):
        a = build_layer_weights(tiny_model_config, 0)
        b = build_layer_weights(tiny_model_config, 1)
        assert not np.array_equal(a.wq, b.wq)

    def test_wo_protects_object_channel(self, tiny_model_config):
        w = build_layer_weights(tiny_model_config, 0)
        layout = tiny_model_config.layout
        np.testing.assert_array_equal(
            w.wo[:, layout.object_slice], 0.0
        )

    def test_fc2_protects_circuit_channels(self, tiny_model_config):
        w = build_layer_weights(tiny_model_config, 0)
        layout = tiny_model_config.layout
        np.testing.assert_array_equal(w.w_fc2[:, layout.object_slice], 0.0)
        np.testing.assert_array_equal(w.w_fc2[:, layout.attribute_slice], 0.0)
        np.testing.assert_array_equal(w.w_fc2[:, layout.position_slice], 0.0)

    def test_out_gain_decays_with_depth(self, tiny_model_config):
        layout = tiny_model_config.layout
        attr = layout.attribute_slice
        w0 = build_layer_weights(tiny_model_config, 0)
        w2 = build_layer_weights(tiny_model_config, 2)
        gain0 = np.abs(np.diag(w0.wo[: attr.stop - attr.start, attr])).mean()
        gain2 = np.abs(np.diag(w2.wo[: attr.stop - attr.start, attr])).mean()
        assert gain2 < gain0

    def test_build_all(self, tiny_model_config):
        weights = build_all_weights(tiny_model_config)
        assert len(weights) == tiny_model_config.num_layers


class TestForward:
    def test_answers_are_valid_indices(self, tiny_model, tiny_samples):
        for sample in tiny_samples:
            result = tiny_model.forward(sample)
            names = sample.codebooks.slot_names(sample.question.slot)
            assert 0 <= result.predicted_index < len(names)

    def test_dense_accuracy_on_tiny_task(self, tiny_model, tiny_samples):
        correct = [tiny_model.forward(s).correct for s in tiny_samples]
        assert sum(correct) >= len(correct) - 1

    def test_trace_records_all_gemms(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample)
        names = {g.name for g in result.trace.gemms}
        assert names == {"qkv", "qk", "pv", "o_proj", "fc1", "fc2"}
        per_layer = len(result.trace.gemms) / tiny_model.config.num_layers
        assert per_layer == 6

    def test_trace_dense_macs_match_formula(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample)
        analytic = tiny_model.config.dense_macs(
            tiny_sample.num_visual_tokens, tiny_sample.num_text_tokens
        )
        assert result.trace.total_macs == analytic

    def test_initial_tokens_recorded(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample)
        expected = (tiny_sample.num_visual_tokens
                    + tiny_sample.num_text_tokens)
        assert result.trace.initial_tokens == expected

    def test_dimension_mismatch_raises(self, tiny_sample):
        other = SyntheticVLM(ModelConfig(name="wide", hidden=128,
                                         num_layers=1, num_heads=4))
        with pytest.raises(ValueError):
            other.forward(tiny_sample)

    def test_deterministic_forward(self, tiny_model, tiny_sample):
        a = tiny_model.forward(tiny_sample)
        b = tiny_model.forward(tiny_sample)
        assert a.predicted_index == b.predicted_index
        assert a.trace.total_macs == b.trace.total_macs


class TestTokenState:
    def test_apply_keep_prunes(self, tiny_model, tiny_sample):
        state = tiny_model.initial_state(tiny_sample)
        keep = np.ones(state.num_tokens, dtype=bool)
        keep[:5] = False
        before = state.num_tokens
        state.apply_keep(keep)
        assert state.num_tokens == before - 5
        assert state.version == 1

    def test_apply_keep_protects_text(self, tiny_model, tiny_sample):
        state = tiny_model.initial_state(tiny_sample)
        keep = np.ones(state.num_tokens, dtype=bool)
        keep[-1] = False  # last token is text
        with pytest.raises(ValueError):
            state.apply_keep(keep)

    def test_apply_keep_shape_check(self, tiny_model, tiny_sample):
        state = tiny_model.initial_state(tiny_sample)
        with pytest.raises(ValueError):
            state.apply_keep(np.ones(3, dtype=bool))


class TestPluginHooks:
    def test_hook_call_order(self, tiny_model, tiny_sample):
        calls = []

        class Recorder(InferencePlugin):
            def begin(self, state):
                calls.append("begin")

            def on_visual_tokens(self, state):
                calls.append("visual")

            def before_layer(self, layer_index, state):
                calls.append(f"layer{layer_index}")

            def finish(self, state):
                calls.append("finish")

        tiny_model.forward(tiny_sample, Recorder())
        assert calls[0] == "begin"
        assert calls[1] == "visual"
        assert calls[-1] == "finish"
        layers = [c for c in calls if c.startswith("layer")]
        assert layers == [f"layer{i}"
                          for i in range(tiny_model.config.num_layers)]

    def test_gemm_input_sites(self, tiny_model, tiny_sample):
        sites = []

        class Recorder(InferencePlugin):
            def gemm_input(self, layer_index, site, x, state, producer, n):
                sites.append(site)
                return x, None

        tiny_model.forward(tiny_sample, Recorder())
        assert set(sites) == {"qkv", "o_proj", "fc1"}
