"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_experiment
from repro.engine.registry import experiment_names


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["table2", "fig11", "--samples", "3", "--seed", "7"]
        )
        assert args.experiments == ["table2", "fig11"]
        assert args.samples == 3
        assert args.seed == 7
        assert args.workers == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_parses_engine_options(self):
        args = build_parser().parse_args(
            ["fig9", "--workers", "4", "--cache-dir", "/tmp/c",
             "--no-cache", "--progress"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache
        assert args.progress

    def test_parses_fault_options(self):
        args = build_parser().parse_args(
            ["fig9", "--retries", "2", "--retry-backoff", "0.01",
             "--job-timeout", "30", "--on-error", "collect"]
        )
        assert args.retries == 2
        assert args.retry_backoff == 0.01
        assert args.job_timeout == 30.0
        assert args.on_error == "collect"
        defaults = build_parser().parse_args(["fig9"])
        assert defaults.retries == 0
        assert defaults.retry_backoff == 0.05
        assert defaults.job_timeout is None
        assert defaults.on_error == "raise"

    @pytest.mark.parametrize("flag", [
        "--workers", "--sim-shards", "--eval-shards",
    ])
    @pytest.mark.parametrize("value", ["0", "-1", "2.5", "many"])
    def test_counts_must_be_positive_integers(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", flag, value])
        err = capsys.readouterr().err
        assert "must be >= 1" in err or "not an integer" in err

    @pytest.mark.parametrize("argv", [
        ["fig9", "--retries", "-1"],
        ["fig9", "--retries", "1.5"],
        ["fig9", "--retry-backoff", "-0.1"],
        ["fig9", "--retry-backoff", "nan"],
        ["fig9", "--job-timeout", "0"],
        ["fig9", "--job-timeout", "-5"],
        ["fig9", "--on-error", "ignore"],
    ])
    def test_fault_options_validated(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    @pytest.mark.parametrize("flag", ["--workers", "--sim-shards"])
    def test_positive_counts_accepted(self, flag):
        args = build_parser().parse_args(["fig9", flag, "3"])
        assert getattr(args, flag.lstrip("-").replace("-", "_")) == 3

    def test_parses_remote_options(self):
        args = build_parser().parse_args([
            "fig9",
            "--remote-cache", "http://cache:8378/",
            "--peers", "http://a:8377, http://b:8377,",
        ])
        assert args.remote_cache == "http://cache:8378"
        assert args.peers == ["http://a:8377", "http://b:8377"]
        defaults = build_parser().parse_args(["fig9"])
        assert defaults.remote_cache is None
        assert defaults.peers is None

    @pytest.mark.parametrize("argv", [
        ["fig9", "--remote-cache", "cache:8378"],
        ["fig9", "--remote-cache", "https://cache:8378"],
        ["fig9", "--remote-cache", "http://"],
        ["fig9", "--remote-cache", "http://cache:notaport"],
        ["fig9", "--remote-cache", "http://cache:1/path"],
        ["fig9", "--peers", ""],
        ["fig9", "--peers", ","],
        ["fig9", "--peers", "http://a:1,b:2"],
        ["fig9", "--peers", "file:///etc/passwd"],
    ])
    def test_remote_options_validated(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "must look like http://" in err or "no peer URLs" in err \
            or "bad port" in err or "bare base URL" in err

    def test_no_cache_conflicts_with_remote_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "--no-cache",
                  "--remote-cache", "http://cache:8378"])
        assert "conflicts" in capsys.readouterr().err

    def test_serve_parser_shares_remote_options(self, capsys):
        from repro.serve.server import build_parser as serve_parser

        args = serve_parser().parse_args(
            ["--peers", "http://a:8377", "--remote-cache", "http://c:1"]
        )
        assert args.peers == ["http://a:8377"]
        assert args.remote_cache == "http://c:1"
        with pytest.raises(SystemExit):
            serve_parser().parse_args(["--peers", "nope"])
        assert "must look like http://" in capsys.readouterr().err


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig2b", "fig2c", "fig9", "fig10a", "fig10b", "fig10c",
            "fig10d", "fig11", "fig12", "fig13",
        }
        assert expected == set(experiment_names())

    @pytest.mark.slow
    def test_run_single_experiment(self, capsys):
        assert main(["fig13", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "FIG 13" in out
        assert "executed" in out  # engine summary line

    @pytest.mark.slow
    def test_run_experiment_helper(self):
        text = run_experiment("fig2c", samples=2, seed=0)
        assert "Sparsity" in text

    @pytest.mark.slow
    def test_multi_experiment_schedule_dedupes(self, capsys, tmp_path):
        # table3 and fig11 share their dense/cmc/focus cells.
        assert main([
            "table3", "fig11", "--samples", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "FIG 11" in out
        assert "deduped" in out

    @pytest.mark.slow
    def test_collect_mode_exits_partial_with_failure_report(
        self, capsys, tmp_path
    ):
        import json

        from repro.engine import install_fault_plan

        install_fault_plan("eval:cmc:*@*:raise")
        jsonl = tmp_path / "events.jsonl"
        try:
            code = main([
                "table3", "--samples", "1", "--on-error", "collect",
                "--progress-jsonl", str(jsonl),
            ])
        finally:
            install_fault_plan(None)
        assert code == 3
        captured = capsys.readouterr()
        assert "job(s) failed" in captured.out
        assert "incomplete" in captured.err
        last = json.loads(jsonl.read_text().splitlines()[-1])
        assert last["event"] == "run-partial"
        assert "table3" in last["failures"]

    @pytest.mark.slow
    def test_warm_cache_run_executes_nothing(self, capsys, tmp_path):
        assert main(["fig13", "--samples", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["fig13", "--samples", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
