"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["table2", "fig11", "--samples", "3", "--seed", "7"]
        )
        assert args.experiments == ["table2", "fig11"]
        assert args.samples == 3
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig2b", "fig2c", "fig9", "fig10a", "fig10b", "fig10c",
            "fig10d", "fig11", "fig12", "fig13",
        }
        assert expected == set(EXPERIMENTS)

    @pytest.mark.slow
    def test_run_single_experiment(self, capsys):
        assert main(["fig13", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "FIG 13" in out

    @pytest.mark.slow
    def test_run_experiment_helper(self):
        text = run_experiment("fig2c", samples=2, seed=0)
        assert "Sparsity" in text
