"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_experiment
from repro.engine.registry import experiment_names


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["table2", "fig11", "--samples", "3", "--seed", "7"]
        )
        assert args.experiments == ["table2", "fig11"]
        assert args.samples == 3
        assert args.seed == 7
        assert args.workers == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_parses_engine_options(self):
        args = build_parser().parse_args(
            ["fig9", "--workers", "4", "--cache-dir", "/tmp/c",
             "--no-cache", "--progress"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache
        assert args.progress

    def test_parses_fault_options(self):
        args = build_parser().parse_args(
            ["fig9", "--retries", "2", "--retry-backoff", "0.01",
             "--job-timeout", "30", "--on-error", "collect"]
        )
        assert args.retries == 2
        assert args.retry_backoff == 0.01
        assert args.job_timeout == 30.0
        assert args.on_error == "collect"
        defaults = build_parser().parse_args(["fig9"])
        assert defaults.retries == 0
        assert defaults.retry_backoff == 0.05
        assert defaults.job_timeout is None
        assert defaults.on_error == "raise"

    @pytest.mark.parametrize("flag", [
        "--workers", "--sim-shards", "--eval-shards",
    ])
    @pytest.mark.parametrize("value", ["0", "-1", "2.5", "many"])
    def test_counts_must_be_positive_integers(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", flag, value])
        err = capsys.readouterr().err
        assert "must be >= 1" in err or "not an integer" in err

    @pytest.mark.parametrize("argv", [
        ["fig9", "--retries", "-1"],
        ["fig9", "--retries", "1.5"],
        ["fig9", "--retry-backoff", "-0.1"],
        ["fig9", "--retry-backoff", "nan"],
        ["fig9", "--job-timeout", "0"],
        ["fig9", "--job-timeout", "-5"],
        ["fig9", "--on-error", "ignore"],
    ])
    def test_fault_options_validated(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    @pytest.mark.parametrize("flag", ["--workers", "--sim-shards"])
    def test_positive_counts_accepted(self, flag):
        args = build_parser().parse_args(["fig9", flag, "3"])
        assert getattr(args, flag.lstrip("-").replace("-", "_")) == 3

    def test_parses_remote_options(self):
        args = build_parser().parse_args([
            "fig9",
            "--remote-cache", "http://cache:8378/",
            "--peers", "http://a:8377, http://b:8377,",
        ])
        assert args.remote_cache == "http://cache:8378"
        assert args.peers == ["http://a:8377", "http://b:8377"]
        defaults = build_parser().parse_args(["fig9"])
        assert defaults.remote_cache is None
        assert defaults.peers is None

    @pytest.mark.parametrize("argv", [
        ["fig9", "--remote-cache", "cache:8378"],
        ["fig9", "--remote-cache", "https://cache:8378"],
        ["fig9", "--remote-cache", "http://"],
        ["fig9", "--remote-cache", "http://cache:notaport"],
        ["fig9", "--remote-cache", "http://cache:1/path"],
        ["fig9", "--peers", ""],
        ["fig9", "--peers", ","],
        ["fig9", "--peers", "http://a:1,b:2"],
        ["fig9", "--peers", "file:///etc/passwd"],
    ])
    def test_remote_options_validated(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "must look like http://" in err or "no peer URLs" in err \
            or "bad port" in err or "bare base URL" in err

    def test_no_cache_conflicts_with_remote_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "--no-cache",
                  "--remote-cache", "http://cache:8378"])
        assert "conflicts" in capsys.readouterr().err

    def test_serve_parser_shares_remote_options(self, capsys):
        from repro.serve.server import build_parser as serve_parser

        args = serve_parser().parse_args(
            ["--peers", "http://a:8377", "--remote-cache", "http://c:1"]
        )
        assert args.peers == ["http://a:8377"]
        assert args.remote_cache == "http://c:1"
        with pytest.raises(SystemExit):
            serve_parser().parse_args(["--peers", "nope"])
        assert "must look like http://" in capsys.readouterr().err


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig2b", "fig2c", "fig9", "fig10a", "fig10b", "fig10c",
            "fig10d", "fig11", "fig12", "fig13", "scenario",
        }
        assert expected == set(experiment_names())

    @pytest.mark.slow
    def test_run_single_experiment(self, capsys):
        assert main(["fig13", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "FIG 13" in out
        assert "executed" in out  # engine summary line

    @pytest.mark.slow
    def test_run_experiment_helper(self):
        text = run_experiment("fig2c", samples=2, seed=0)
        assert "Sparsity" in text

    @pytest.mark.slow
    def test_multi_experiment_schedule_dedupes(self, capsys, tmp_path):
        # table3 and fig11 share their dense/cmc/focus cells.
        assert main([
            "table3", "fig11", "--samples", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "FIG 11" in out
        assert "deduped" in out

    @pytest.mark.slow
    def test_collect_mode_exits_partial_with_failure_report(
        self, capsys, tmp_path
    ):
        import json

        from repro.engine import install_fault_plan

        install_fault_plan("eval:cmc:*@*:raise")
        jsonl = tmp_path / "events.jsonl"
        try:
            code = main([
                "table3", "--samples", "1", "--on-error", "collect",
                "--progress-jsonl", str(jsonl),
            ])
        finally:
            install_fault_plan(None)
        assert code == 3
        captured = capsys.readouterr()
        assert "job(s) failed" in captured.out
        assert "incomplete" in captured.err
        last = json.loads(jsonl.read_text().splitlines()[-1])
        assert last["event"] == "run-partial"
        assert "table3" in last["failures"]

    @pytest.mark.slow
    def test_warm_cache_run_executes_nothing(self, capsys, tmp_path):
        assert main(["fig13", "--samples", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["fig13", "--samples", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out


class TestScenarioFlag:
    def test_scenario_spec_canonicalized_at_parse_time(self):
        args = build_parser().parse_args(
            ["scenario", "--scenario", "mtconv:turns=2"]
        )
        assert args.scenario == \
            "mtconv:seed=0,history=4,profile=videomme,turns=2"

    def test_invalid_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "--scenario", "mtconv:bogus=1"]
            )
        assert "bogus" in capsys.readouterr().err

    def test_scenario_flag_requires_scenario_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--scenario", "mtconv"])
        assert "only applies" in capsys.readouterr().err

    @pytest.mark.slow
    def test_scenario_experiment_runs(self, capsys):
        assert main(["scenario", "--scenario", "mtconv:turns=2",
                     "--samples", "2", "--eval-shards", "1"]) == 0
        out = capsys.readouterr().out
        assert "SCENARIO mtconv" in out
        assert "digest" in out


class TestLoadCommand:
    def _parse(self, argv):
        from repro.load.cli import build_parser as build_load_parser
        return build_load_parser().parse_args(argv)

    def test_defaults(self):
        args = self._parse([])
        assert args.mode == "closed"
        assert not args.virtual
        assert args.url == "http://127.0.0.1:8377"

    @pytest.mark.parametrize("argv, fragment", [
        (["--mode", "open", "--concurrency", "2"], "conflicts"),
        (["--mode", "open", "--think", "1", "--requests", "4"],
         "conflicts"),
        (["--mode", "closed", "--rate", "8"], "conflicts"),
        (["--mode", "closed", "--duration", "2", "--burst-size", "2"],
         "conflicts"),
        (["--url", "ftp://x"], "http"),
        (["--concurrency", "0"], ">= 1"),
        (["--think", "-1"], ">= 0"),
        (["--scenario", "mtconv", "--experiments", "fig13"],
         "only applies"),
        (["--scenario", "nope"], "unknown scenario"),
    ])
    def test_flag_validation(self, argv, fragment, capsys):
        from repro.load.cli import main as load_main
        with pytest.raises(SystemExit):
            load_main(argv)
        assert fragment in capsys.readouterr().err

    def test_bad_trace_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"at_s": -3}\n', encoding="utf-8")
        from repro.load.cli import main as load_main
        with pytest.raises(SystemExit):
            load_main(["--virtual", "--trace", str(bad)])
        err = capsys.readouterr().err
        assert "bad trace file" in err
        with pytest.raises(SystemExit):
            load_main(["--virtual",
                       "--trace", str(tmp_path / "missing.jsonl")])
        assert "bad trace file" in capsys.readouterr().err

    def test_virtual_closed_loop_via_main_dispatch(self, capsys,
                                                   tmp_path):
        output = tmp_path / "load.json"
        assert main(["load", "--virtual", "--mode", "closed",
                     "--concurrency", "2", "--requests", "6",
                     "--subscribers", "3",
                     "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "[load closed/virtual] 6 requests (0 failed)" in out
        assert "histogram:" in out
        import json
        summary = json.loads(output.read_text(encoding="utf-8"))
        assert summary["requests"] == 6
        assert summary["fanout"]["subscribers"] == 3
        assert sum(summary["histogram_ms"]["counts"]) == 6

    def test_virtual_open_loop_replays_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"at_s": 0.0}\n{"at_s": 0.1, "subscribers": 2}\n',
            encoding="utf-8",
        )
        assert main(["load", "--virtual", "--mode", "open",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "[load open/virtual] 2 requests (0 failed)" in out
