"""Differential suite: cross-sample batched forward vs the serial oracle.

The batched forward (``FocusConfig.forward_batch > 1``) must be
*bit-identical* to running every sample through the per-sample loop —
same traces, same representatives, same unique/comparison counts, same
accuracy and sparsity — for every batch size, method arm, and ragged
layout mix.  These tests lock that contract in at three levels: a
hypothesis grid of random per-lane DAG tables against the matcher
oracle, whole-gather parity over layout-diverged lanes, and full
``EvalResult`` equality over mixed-dataset eval spans.  The job-digest
and progress-stream regressions that rode along are pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FocusConfig
from repro.core.batched import (
    BATCH_METHOD_REGISTRY,
    bucket_samples,
    layout_digest,
    make_batch_plugin,
)
from repro.core.gather import SimilarityGather
from repro.core.matching import SimilarityMatcher, build_batch_schedule
from repro.engine import EvalJob, ExperimentEngine, config_digest
from repro.eval.runner import (
    ModelCache,
    QuantizedModelCache,
    evaluate,
    evaluate_samples,
)
from repro.workloads.datasets import make_dataset_span


# ---------------------------------------------------------------------------
# Strategies: stacks of random per-lane DAG tables (the post-pruning
# case where lanes of one batch carry *different* tables).
# ---------------------------------------------------------------------------

def _random_dag_table(rng, n, n_offsets):
    table = np.full((n, n_offsets), -1, dtype=np.int64)
    for i in range(1, n):
        if rng.random() < 0.25:  # text-like row: no partners
            continue
        count = int(rng.integers(0, n_offsets + 1))
        if count:
            partners = rng.choice(i, size=min(count, i), replace=False)
            table[i, :partners.size] = partners
    return table


def _adversarial_values(rng, n, k):
    x = rng.standard_normal((n, k)).astype(np.float32)
    for i in range(1, n):
        roll = rng.random()
        if roll < 0.25:
            x[i] = x[int(rng.integers(0, i))]
        elif roll < 0.35:
            x[i] = 0.0
        elif roll < 0.45:
            x[i] = x[int(rng.integers(0, i))] * (
                1.0 + rng.standard_normal(k).astype(np.float32) * 0.01
            )
    return x


@st.composite
def random_batch_tiles(draw):
    """A stacked (blocks, tables, threshold) batch of tiles.

    Every lane shares the tile geometry (rows, offsets, vector split)
    but draws its *own* DAG table and values — a strict superset of
    what pruning-diverged lanes produce.
    """
    num_lanes = draw(st.integers(1, 4))
    n = draw(st.integers(1, 20))
    n_offsets = draw(st.integers(1, 5))
    k = draw(st.integers(1, 16))
    vector = draw(st.integers(0, k))
    threshold = draw(
        st.floats(0.05, 1.0, allow_nan=False, allow_infinity=False)
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    tables, blocks = [], []
    for _ in range(num_lanes):
        tables.append(_random_dag_table(rng, n, n_offsets))
        blocks.append(SimilarityMatcher.split_blocks(
            _adversarial_values(rng, n, k), vector
        ))
    return np.stack(blocks), np.stack(tables), threshold


class TestMatcherDifferential:
    @given(random_batch_tiles())
    @settings(max_examples=60, deadline=None)
    def test_batch_bit_identical_per_lane(self, batch):
        blocks, tables, threshold = batch
        matcher = SimilarityMatcher(threshold)
        outcome = matcher.match_tile_batch(blocks, tables)
        for s in range(blocks.shape[0]):
            serial = matcher.match_tile(blocks[s], tables[s])
            np.testing.assert_array_equal(outcome.reps[s], serial.reps)
            assert int(outcome.comparisons[s]) == serial.comparisons
        np.testing.assert_array_equal(
            outcome.unique_counts(),
            np.stack([
                matcher.match_tile(blocks[s], tables[s]).unique_counts()
                for s in range(blocks.shape[0])
            ]),
        )

    @given(random_batch_tiles())
    @settings(max_examples=30, deadline=None)
    def test_shared_2d_table_equals_stacked(self, batch):
        blocks, tables, threshold = batch
        matcher = SimilarityMatcher(threshold)
        shared = matcher.match_tile_batch(blocks, tables[0])
        stacked = matcher.match_tile_batch(
            blocks, np.broadcast_to(tables[0], tables.shape)
        )
        np.testing.assert_array_equal(shared.reps, stacked.reps)
        np.testing.assert_array_equal(
            shared.comparisons, stacked.comparisons
        )

    @given(random_batch_tiles())
    @settings(max_examples=30, deadline=None)
    def test_reference_mode_oracle(self, batch):
        blocks, tables, threshold = batch
        ref = SimilarityMatcher(threshold, mode="reference")
        wav = SimilarityMatcher(threshold)
        a = ref.match_tile_batch(blocks, tables)
        b = wav.match_tile_batch(blocks, tables)
        np.testing.assert_array_equal(a.reps, b.reps)
        np.testing.assert_array_equal(a.comparisons, b.comparisons)

    @given(random_batch_tiles())
    @settings(max_examples=30, deadline=None)
    def test_batch_schedule_rows_partition_per_lane(self, batch):
        _, tables, _ = batch
        for group in build_batch_schedule(tables):
            # Padded slots are all-invalid; real slots carry at least
            # one valid partner (rows without partners never schedule).
            real = group.valid4[:, :, :, 0].any(axis=2)
            assert group.rows[~real].sum() == 0

    def test_stacked_table_validation(self):
        matcher = SimilarityMatcher(0.9)
        blocks = np.zeros((2, 3, 1, 4), dtype=np.float32)
        bad = np.array([[[-1], [2], [-1]]] * 2, dtype=np.int64)
        with pytest.raises(ValueError, match="precede"):
            matcher.match_tile_batch(blocks, bad)
        with pytest.raises(ValueError, match="cover"):
            matcher.match_tile_batch(
                blocks, np.full((1, 3, 1), -1, dtype=np.int64)
            )


class TestGatherDifferential:
    """Whole-gather parity for lanes with *diverged* layouts."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_per_lane_layouts_match_serial(self, seed):
        rng = np.random.default_rng(seed)
        grid = (3, 4, 4)
        full = np.array([
            [f, r, c]
            for f in range(grid[0])
            for r in range(grid[1])
            for c in range(grid[2])
        ])
        keep_count, n_text, k = 30, 4, 24
        lanes = 3
        lane_positions, lane_text, xs = [], [], []
        for _ in range(lanes):
            picked = np.sort(rng.choice(
                full.shape[0], size=keep_count, replace=False
            ))
            positions = np.concatenate(
                [full[picked], np.full((n_text, 3), -1)], axis=0
            )
            lane_positions.append(positions)
            lane_text.append(np.array(
                [False] * keep_count + [True] * n_text
            ))
            x = rng.standard_normal(
                (keep_count + n_text, k)
            ).astype(np.float32)
            x[8:16] = x[0:8]  # duplicates so matching happens
            xs.append(x)

        config = FocusConfig(vector_size=8, m_tile=16)
        engine = SimilarityGather(config)
        batch = engine.gather_batch(
            np.stack(xs), lane_positions, lane_text, grid,
            cache_token=[f"lane{i}" for i in range(lanes)],
        )
        for s in range(lanes):
            serial = SimilarityGather(config).gather(
                xs[s], lane_positions[s], lane_text[s], grid,
                cache_token="tok",
            )
            np.testing.assert_array_equal(
                batch.per_sample[s].x_approx, serial.x_approx
            )
            np.testing.assert_array_equal(
                batch.per_sample[s].reps, serial.reps
            )
            assert batch.per_sample[s].tile_lengths == serial.tile_lengths
            assert batch.per_sample[s].comparisons == serial.comparisons
            assert batch.per_sample[s].unique_total == serial.unique_total
            assert batch.per_sample[s].map_bits == serial.map_bits

    def test_batch_plan_cached_across_calls(self, rng):
        config = FocusConfig(vector_size=8, m_tile=64)
        engine = SimilarityGather(config)
        grid = (2, 3, 3)
        positions = np.array([
            [f, r, c]
            for f in range(grid[0])
            for r in range(grid[1])
            for c in range(grid[2])
        ])
        is_text = np.zeros(positions.shape[0], dtype=bool)
        x = rng.standard_normal(
            (2, positions.shape[0], 16)
        ).astype(np.float32)
        engine.gather_batch(
            x, [positions] * 2, [is_text] * 2, grid,
            cache_token=["a", "a"],
        )
        assert len(engine._batch_plan_cache) == 1
        engine.gather_batch(
            x, [positions] * 2, [is_text] * 2, grid,
            cache_token=["a", "a"],
        )
        assert len(engine._batch_plan_cache) == 1


MODEL = "llava-video"
RAGGED_DATASETS = ("vqav2", "mlvu")
"""Two profiles with different token layouts: concatenating their
spans gives a ragged batch that must split into shape buckets."""


def _ragged_samples(model, per_dataset=4):
    samples = []
    for dataset in RAGGED_DATASETS:
        samples.extend(make_dataset_span(
            dataset, model.config.layout, 0, per_dataset, seed=0
        ))
    return samples


@pytest.mark.slow
class TestEvalParity:
    """Full EvalResult equality: batched vs serial, every arm."""

    ARMS = (("focus", False), ("dense", False), ("focus", True))

    def _eval(self, method, quantized, batch, samples=None):
        model = (
            QuantizedModelCache.get(MODEL) if quantized
            else ModelCache.get(MODEL)
        )
        if samples is None:
            samples = _ragged_samples(model)
        config = FocusConfig(forward_batch=batch)
        return evaluate_samples(
            model, samples, method, config=config, model_name=MODEL,
            dataset_name="ragged", quantized=quantized,
        )

    @pytest.mark.parametrize("method,quantized", ARMS)
    @pytest.mark.parametrize("batch", [1, 2, 7, 8])
    def test_ragged_span_bit_identical(self, method, quantized, batch):
        serial = self._eval(method, quantized, 1)
        batched = self._eval(method, quantized, batch)
        # Dataclass equality covers accuracy, sparsity, per-sample
        # correctness, dense MACs, and every GemmTrace of every layer
        # (unique counts, comparisons, map bits included).
        assert batched == serial

    def test_unsupported_method_falls_back_to_serial(self):
        model = ModelCache.get(MODEL)
        assert "framefusion" not in BATCH_METHOD_REGISTRY
        assert make_batch_plugin("framefusion", model) is None
        serial = self._eval("framefusion", False, 1)
        batched = self._eval("framefusion", False, 4)
        assert batched == serial

    def test_ragged_batches_split_into_shape_buckets(self):
        model = ModelCache.get(MODEL)
        samples = _ragged_samples(model, per_dataset=3)
        buckets = bucket_samples(samples)
        assert len(buckets) == len(RAGGED_DATASETS)
        assert sorted(i for b in buckets for i in b) == list(range(6))


class TestForwardBatchKnob:
    def test_forward_batch_in_config_digest(self):
        # Regression: a batched cell must never collide with a serial
        # cell in the job cache — the knob is part of the digest.
        digests = {
            config_digest(FocusConfig(forward_batch=b)) for b in (1, 2, 8)
        }
        assert len(digests) == 3

    def test_forward_batch_validated(self):
        with pytest.raises(ValueError, match="forward_batch"):
            FocusConfig(forward_batch=0)

    def test_layout_digest_tracks_version(self, tiny_model, tiny_sample):
        from repro.model.plugins import InferencePlugin

        digests = []

        class Probe(InferencePlugin):
            def before_layer(self, layer_index, state):
                digests.append(layout_digest(state))

        tiny_model.forward(tiny_sample, Probe())
        assert len(set(digests)) >= 1  # memoized, stable per version


@pytest.mark.slow
class TestProgressUnderBatching:
    """eval-shard-done keeps per-sample running-accuracy semantics."""

    def test_shard_stream_matches_serial_semantics(self):
        def run(config):
            events = []
            engine = ExperimentEngine(
                eval_shards=2, progress=events.append
            )
            job = EvalJob(
                model=MODEL, dataset="vqav2", method="focus",
                num_samples=6, seed=0, config=config,
            )
            result = engine.run([job])[job]
            return result, [
                e.detail for e in events
                if e.action == "eval-shard-done"
            ]

        serial_result, serial_details = run(FocusConfig())
        batched_result, batched_details = run(
            FocusConfig(forward_batch=4)
        )
        assert batched_result == serial_result
        # Spans complete in the same order serially here, so the
        # running accuracy/sparsity stream is identical event for
        # event — batching within a span never changes per-sample
        # records, only wall-clock.
        assert batched_details == serial_details
        assert batched_details[-1]["samples"] == 6
        assert batched_details[-1]["accuracy"] == pytest.approx(
            100.0 * sum(batched_result.correct) / 6
        )

    def test_whole_cell_parity_via_public_entrypoint(self):
        serial = evaluate(MODEL, "vqav2", "focus", 6, 0)
        batched = evaluate(
            MODEL, "vqav2", "focus", 6, 0,
            config=FocusConfig(forward_batch=3),
        )
        assert batched == serial


class TestPluginReusability:
    """Plugin construction is hoisted out of the eval loop; stateful
    plugins opt out via ``reusable = False`` and are re-made per
    sample."""

    def test_declarations(self):
        from repro.baselines.adaptiv import AdapTiVPlugin
        from repro.baselines.cmc import CMCPlugin
        from repro.baselines.dense import DensePlugin
        from repro.baselines.framefusion import FrameFusionPlugin
        from repro.core.pipeline import FocusPlugin

        assert DensePlugin.reusable is True
        assert AdapTiVPlugin.reusable is True
        assert CMCPlugin.reusable is True
        assert FrameFusionPlugin.reusable is True
        assert FocusPlugin.reusable is True

    def test_int8_wrapper_delegates(self):
        from repro.baselines.dense import DensePlugin
        from repro.model.plugins import InferencePlugin
        from repro.quant.int8 import Int8ActivationPlugin

        class Stateful(InferencePlugin):
            reusable = False

        assert Int8ActivationPlugin(DensePlugin()).reusable is True
        assert Int8ActivationPlugin(Stateful()).reusable is False
