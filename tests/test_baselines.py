"""Tests for the baseline methods: FrameFusion, AdapTiV, CMC, GPU."""

import numpy as np
import pytest

from repro.baselines.adaptiv import AdapTiVPlugin, sign_agreement
from repro.baselines.cmc import CMCPlugin
from repro.baselines.dense import DensePlugin
from repro.baselines.framefusion import FrameFusionPlugin
from repro.baselines.gpu import (
    A100,
    JETSON_ORIN_NANO,
    GpuSpec,
    simulate_gpu,
)
from repro.eval.metrics import computation_sparsity


class TestSignAgreement:
    def test_identical(self):
        v = np.array([1.0, -2.0, 3.0])
        assert sign_agreement(v, v) == 1.0

    def test_opposite(self):
        v = np.array([1.0, -2.0, 3.0])
        assert sign_agreement(v, -v) == 0.0

    def test_partial(self):
        assert sign_agreement(np.array([1.0, 1.0, 1.0, 1.0]),
                              np.array([1.0, 1.0, -1.0, -1.0])) == 0.5

    def test_shape_check(self):
        with pytest.raises(ValueError):
            sign_agreement(np.zeros(3), np.zeros(4))


class TestAdapTiV:
    def test_merges_tokens(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample, AdapTiVPlugin())
        assert result.final_tokens < (tiny_sample.num_visual_tokens
                                      + tiny_sample.num_text_tokens)
        assert result.trace.preprocess_macs > 0

    def test_high_threshold_merges_nothing(self, tiny_model, tiny_sample):
        result = tiny_model.forward(tiny_sample, AdapTiVPlugin(threshold=1.0))
        assert result.final_tokens == (tiny_sample.num_visual_tokens
                                       + tiny_sample.num_text_tokens)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdapTiVPlugin(threshold=0.3)

    def test_sparsity_increases_with_lower_threshold(self, tiny_model,
                                                     tiny_sample):
        def sparsity(threshold):
            result = tiny_model.forward(
                tiny_sample, AdapTiVPlugin(threshold=threshold)
            )
            return computation_sparsity(result.trace, tiny_model.config,
                                        tiny_sample)
        assert sparsity(0.70) >= sparsity(0.95)


class TestCMC:
    def test_condenses_tokens(self, tiny_model, tiny_sample):
        plugin = CMCPlugin(tiny_model.config.layout)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.final_tokens <= (tiny_sample.num_visual_tokens
                                       + tiny_sample.num_text_tokens)
        assert result.trace.preprocess_macs > 0

    def test_first_frame_never_condensed(self, tiny_model, tiny_sample):
        plugin = CMCPlugin(tiny_model.config.layout, threshold=-1.0)
        state = tiny_model.initial_state(tiny_sample)
        plugin.on_visual_tokens(state)
        frames = state.positions[~state.is_text][:, 0]
        tokens_per_frame = (tiny_sample.scene.grid_height
                            * tiny_sample.scene.grid_width)
        assert int((frames == 0).sum()) == tokens_per_frame

    def test_search_range_validation(self, tiny_layout):
        with pytest.raises(ValueError):
            CMCPlugin(tiny_layout, search_range=-1)

    def test_lower_threshold_condenses_more(self, tiny_model, tiny_sample):
        def final_tokens(threshold):
            plugin = CMCPlugin(tiny_model.config.layout, threshold=threshold)
            return tiny_model.forward(tiny_sample, plugin).final_tokens
        assert final_tokens(0.2) <= final_tokens(0.95)


class TestFrameFusion:
    def test_hits_sparsity_budget(self, tiny_model, tiny_sample):
        # Early merge/prune layers so a 3-layer model can reach the
        # budget (the default layers suit 12+-layer models).
        plugin = FrameFusionPlugin(tiny_model.config, target_sparsity=0.5,
                                   merge_layer=0, prune_layer=1)
        result = tiny_model.forward(tiny_sample, plugin)
        sparsity = computation_sparsity(result.trace, tiny_model.config,
                                        tiny_sample)
        assert sparsity == pytest.approx(0.5, abs=0.15)

    def test_target_validation(self, tiny_model_config):
        with pytest.raises(ValueError):
            FrameFusionPlugin(tiny_model_config, target_sparsity=1.0)

    def test_layer_order_validation(self, tiny_model_config):
        with pytest.raises(ValueError):
            FrameFusionPlugin(tiny_model_config, merge_layer=2,
                              prune_layer=2)

    def test_keeps_text_tokens(self, tiny_model, tiny_sample):
        plugin = FrameFusionPlugin(tiny_model.config, target_sparsity=0.8)
        result = tiny_model.forward(tiny_sample, plugin)
        assert result.final_tokens >= tiny_sample.num_text_tokens + 1


class TestDense:
    def test_noop(self, tiny_model, tiny_sample):
        dense = tiny_model.forward(tiny_sample, DensePlugin())
        plain = tiny_model.forward(tiny_sample)
        assert dense.trace.total_macs == plain.trace.total_macs


class TestGpuRoofline:
    def test_latency_positive(self, tiny_model, tiny_sample):
        trace = tiny_model.forward(tiny_sample).trace
        result = simulate_gpu(trace)
        assert result.latency_s > 0
        assert result.energy_j == pytest.approx(
            result.latency_s * JETSON_ORIN_NANO.board_power_w
        )

    def test_a100_faster_than_orin(self, tiny_model, tiny_sample):
        trace = tiny_model.forward(tiny_sample).trace
        orin = simulate_gpu(trace, JETSON_ORIN_NANO)
        a100 = simulate_gpu(trace, A100)
        assert a100.latency_s < orin.latency_s

    def test_sparse_overhead(self, tiny_model, tiny_sample):
        trace = tiny_model.forward(tiny_sample).trace
        dense = simulate_gpu(trace)
        sparse = simulate_gpu(trace, sparse=True)
        # Same trace: sparse mode only lowers utilization/adds overhead.
        assert sparse.latency_s > dense.latency_s

    def test_memory_bound_detection(self):
        from repro.accel.trace import GemmTrace, ModelTrace
        trace = ModelTrace()
        # Tiny compute, large k*n weights -> memory bound.
        trace.add(GemmTrace(name="fc1", layer=0, m=1, k=4096, n=4096))
        spec = GpuSpec(name="x", peak_tflops=1000.0, bandwidth_gbs=1.0,
                       board_power_w=10.0)
        assert not simulate_gpu(trace, spec).compute_bound
