"""Tests for repro.workloads.prompts and repro.workloads.datasets."""

import numpy as np
import pytest

from repro.model.embedding import QUESTION_SLOTS
from repro.workloads.datasets import (
    ALL_PROFILES,
    IMAGE_PROFILES,
    VIDEO_PROFILES,
    get_profile,
    make_dataset,
    make_sample,
)
from repro.workloads.prompts import encode_text, question_for, random_question
from repro.workloads.scene import random_scene


class TestQuestions:
    def test_question_for_color(self):
        scene = random_scene(2, 5, 5, 2, seed=1)
        obj = scene.objects[0]
        q = question_for(obj, "color")
        assert q.answer_index == obj.color_index
        assert obj.kind in q.text

    def test_question_for_motion(self):
        scene = random_scene(2, 5, 5, 2, seed=1)
        obj = scene.objects[1]
        q = question_for(obj, "motion")
        assert q.answer_index == obj.motion_index

    def test_unknown_slot(self):
        scene = random_scene(2, 5, 5, 1, seed=1)
        with pytest.raises(ValueError):
            question_for(scene.objects[0], "size")

    def test_random_question_references_scene_object(self):
        scene = random_scene(2, 5, 5, 3, seed=2)
        q = random_question(scene, seed=2)
        assert q.kind_index in {o.kind_index for o in scene.objects}
        assert q.slot in QUESTION_SLOTS


class TestEncodeText:
    def test_shape(self, tiny_codebooks, tiny_layout):
        scene = random_scene(2, 5, 5, 2, seed=3)
        q = random_question(scene, seed=3)
        tokens = encode_text(q, tiny_codebooks, 6, seed=3)
        assert tokens.shape == (6, tiny_layout.hidden)

    def test_query_token_is_last_and_carries_probe(self, tiny_codebooks,
                                                   tiny_layout):
        scene = random_scene(2, 5, 5, 2, seed=4)
        q = random_question(scene, seed=4)
        tokens = encode_text(q, tiny_codebooks, 5, seed=4)
        probe = tiny_codebooks.kind_probe_codes[q.kind_index]
        query_obj = tokens[-1][tiny_layout.object_slice]
        sim = query_obj @ probe / np.linalg.norm(query_obj)
        assert sim > 0.9

    def test_needs_one_token(self, tiny_codebooks):
        scene = random_scene(2, 5, 5, 1, seed=5)
        q = random_question(scene, seed=5)
        with pytest.raises(ValueError):
            encode_text(q, tiny_codebooks, 0, seed=5)


class TestDatasets:
    def test_profiles_cover_paper_benchmarks(self):
        assert set(VIDEO_PROFILES) == {"videomme", "mlvu", "mvbench"}
        assert set(IMAGE_PROFILES) == {"vqav2", "mme", "mmbench"}

    def test_image_profiles_single_frame(self):
        for profile in IMAGE_PROFILES.values():
            assert profile.num_frames == 1
            assert not profile.is_video

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("imagenet")

    def test_make_dataset_deterministic(self, tiny_layout):
        a = make_dataset("videomme", tiny_layout, 2, seed=0)
        b = make_dataset("videomme", tiny_layout, 2, seed=0)
        np.testing.assert_array_equal(a[0].visual_tokens, b[0].visual_tokens)
        assert a[0].question == b[0].question

    def test_samples_differ_across_index(self, tiny_layout):
        samples = make_dataset("videomme", tiny_layout, 2, seed=0)
        assert not np.array_equal(samples[0].visual_tokens,
                                  samples[1].visual_tokens)

    def test_sample_consistency(self, tiny_sample):
        assert tiny_sample.visual_tokens.shape[0] == (
            tiny_sample.scene.num_visual_tokens
        )
        assert tiny_sample.positions.shape == (
            tiny_sample.num_visual_tokens, 3
        )
        grid = tiny_sample.grid
        assert grid == (tiny_sample.scene.num_frames,
                        tiny_sample.scene.grid_height,
                        tiny_sample.scene.grid_width)

    def test_answer_in_vocab(self, tiny_samples):
        for sample in tiny_samples:
            names = sample.codebooks.slot_names(sample.question.slot)
            assert 0 <= sample.question.answer_index < len(names)
