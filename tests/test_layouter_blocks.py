"""Tests for the convolution-style layouter and block construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    build_neighbor_table,
    comparisons_in_table,
    linear_index,
    neighbor_offsets,
)
from repro.core.layouter import ConvolutionLayouter


class TestLayouterEquations:
    """The worked examples printed in Fig. 7 of the paper."""

    def test_fig7_example_b_b2(self):
        # f=1, r=1, c=2, W=5.  The paper's formula gives
        # 1%2*4 + 1%2*2 + 2%2 = 6 (the figure prints "7", which
        # contradicts its own equation — 4 + 2 + 0 = 6; the second
        # worked example below is self-consistent).
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=5)
        address = layouter.address(1, 1, 2)
        assert address.bank == 6
        assert address.offset == 1

    def test_fig7_example_b_e3(self):
        # f=1, r=4, c=3, W=5 -> bank 5, offset 7.
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=5)
        address = layouter.address(1, 4, 3)
        assert address.bank == 5
        assert address.offset == 7

    def test_num_banks(self):
        assert ConvolutionLayouter((2, 2, 2), 5).num_banks == 8
        assert ConvolutionLayouter((1, 3, 3), 5).num_banks == 9

    def test_vectorized_matches_scalar(self):
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=7)
        rng = np.random.default_rng(0)
        positions = np.stack([
            rng.integers(0, 4, 20), rng.integers(0, 6, 20),
            rng.integers(0, 7, 20),
        ], axis=1)
        table = layouter.addresses(positions)
        for row, (f, r, c) in zip(table, positions):
            assert row[0] == layouter.bank_of(int(f), int(r), int(c))
            assert row[1] == layouter.offset_of(int(r), int(c))


class TestConflictFreedom:
    @given(st.integers(0, 7), st.integers(0, 9), st.integers(0, 9))
    @settings(max_examples=100, deadline=None)
    def test_every_window_conflict_free(self, frame, row, col):
        """The key property of Sec. VI-B: all 8 vectors of any 2x2x2
        window live in distinct banks — no replication needed."""
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=10)
        assert layouter.is_conflict_free((frame, row, col))

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
           st.integers(0, 8), st.integers(0, 8), st.integers(0, 8))
    @settings(max_examples=100, deadline=None)
    def test_general_blocks_conflict_free(self, bf, bh, bw, f, r, c):
        layouter = ConvolutionLayouter((bf, bh, bw), frame_width=9)
        assert layouter.is_conflict_free((f, r, c))

    def test_distinct_tokens_distinct_addresses(self):
        layouter = ConvolutionLayouter((2, 2, 2), frame_width=6)
        seen = {}
        for f in range(2):
            for r in range(6):
                for c in range(6):
                    address = layouter.address(f, r, c)
                    key = (address.bank, address.offset, f // 2)
                    assert key not in seen, f"collision at {(f, r, c)}"
                    seen[key] = (f, r, c)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            ConvolutionLayouter((0, 2, 2), 5)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ConvolutionLayouter((2, 2, 2), 0)


class TestNeighborOffsets:
    def test_2x2x2_has_seven(self):
        offsets = neighbor_offsets((2, 2, 2))
        assert offsets.shape == (7, 3)

    def test_linear_offsets_match_paper(self):
        """Fig. 6: for W=5, H=5 the fixed offsets are
        -1, -5, -6, -25, -26, -30, -31."""
        width, height = 5, 5
        offsets = neighbor_offsets((2, 2, 2))
        linear = offsets[:, 0] * height * width + offsets[:, 1] * width \
            + offsets[:, 2]
        assert sorted(-int(v) for v in linear) == [
            -31, -30, -26, -25, -6, -5, -1
        ]

    def test_block_of_one_has_no_neighbors(self):
        assert neighbor_offsets((1, 1, 1)).shape == (0, 3)


class TestNeighborTable:
    def test_full_grid_interior_token(self):
        grid = (2, 3, 3)
        positions = np.array([
            [f, r, c] for f in range(2) for r in range(3) for c in range(3)
        ])
        table = build_neighbor_table(positions, grid, (2, 2, 2))
        # The last token (1,2,2) has all 7 partners present.
        assert (table[-1] >= 0).all()
        # The first token (0,0,0) has none.
        assert (table[0] == -1).all()

    def test_partners_precede_key(self):
        grid = (2, 3, 3)
        positions = np.array([
            [f, r, c] for f in range(2) for r in range(3) for c in range(3)
        ])
        table = build_neighbor_table(positions, grid, (2, 2, 2))
        for i in range(table.shape[0]):
            partners = table[i][table[i] >= 0]
            assert (partners < i).all()

    def test_pruned_holes_are_skipped(self):
        grid = (1, 2, 3)
        # Token (0,1,1) pruned: (0,1,2)'s left partner is absent.
        positions = np.array([
            [0, 0, 0], [0, 0, 1], [0, 0, 2], [0, 1, 0], [0, 1, 2],
        ])
        table = build_neighbor_table(positions, grid, (1, 2, 2))
        key = 4  # (0,1,2)
        partner_positions = {
            tuple(positions[j]) for j in table[key] if j >= 0
        }
        assert (0, 1, 1) not in partner_positions
        assert (0, 0, 1) in partner_positions

    def test_requires_sorted_positions(self):
        positions = np.array([[0, 0, 1], [0, 0, 0]])
        with pytest.raises(ValueError):
            build_neighbor_table(positions, (1, 2, 2), (1, 2, 2))

    def test_comparisons_count(self):
        grid = (1, 2, 2)
        positions = np.array([[0, 0, 0], [0, 0, 1], [0, 1, 0], [0, 1, 1]])
        table = build_neighbor_table(positions, grid, (1, 2, 2))
        # (0,0,0):0, (0,0,1):1, (0,1,0):1, (0,1,1):3 partners.
        assert comparisons_in_table(table) == 5

    def test_linear_index(self):
        positions = np.array([[1, 2, 3]])
        assert linear_index(positions, (2, 4, 5))[0] == 1 * 20 + 2 * 5 + 3
