"""Remote cache tier benchmark: dedup across hosts, bounded overhead.

The acceptance gates for the remote-cache/fleet PR, driven by the
Table II cell workload against a live in-process cache server
(:class:`~repro.remote.cache_server.BackgroundCacheServer`):

* **Fleet-wide dedup** — after one "host" (engine + fresh local
  cache) runs the workload cold and publishes, a *second* host with
  an empty local cache but the same ``--remote-cache`` URL executes
  **zero** jobs: every result is served from the remote tier,
  digest-verified, and the two hosts' results are bit-identical.
* **Bounded overhead** — the cold run with the remote tier attached
  (manifest prefetch + write-behind publish) must finish within
  ``1.15x`` the wall clock of the same cold run on a plain local
  disk cache: the remote tier rides along nearly for free when it
  has nothing to serve.

``benchmarks/results/BENCH_remote.json`` records the walls, the
overhead ratio, per-tier hit counts, and the second host's executed
count so future PRs have a fleet-cost trajectory.
"""

import json
import time

from repro.engine import ExperimentEngine, ResultCache
from repro.eval.experiments import plan_table2
from repro.remote import protocol
from repro.remote.cache_server import BackgroundCacheServer
from repro.remote.client import RemoteCacheClient

from conftest import bench_samples

MAX_OVERHEAD_RATIO = 1.15


def _jobs(samples):
    plan = plan_table2(
        models=("llava-video",), datasets=("videomme",),
        num_samples=samples,
    )
    return sorted(set(plan.jobs), key=lambda job: job.job_id)


def _timed_run(engine, jobs):
    start = time.perf_counter()
    results = engine.run(list(jobs))
    return results, time.perf_counter() - start


def _canonical(results):
    return protocol.encode_payload(sorted(
        (job.job_id, protocol.encode_payload(payload))
        for job, payload in results.items()
    ))


def test_remote_cache_dedup_and_overhead(results_dir, tmp_path):
    samples = bench_samples()
    jobs = _jobs(samples)

    # Warm the process-wide model cache so the disk-vs-remote wall
    # comparison isn't skewed by whichever arm runs first.
    warmup = ExperimentEngine(cache=ResultCache(enabled=False))
    warmup.run(jobs[:1])
    warmup.close()

    # -- baseline: cold run on a plain local disk cache ---------------
    disk_engine = ExperimentEngine(
        cache=ResultCache(cache_dir=tmp_path / "disk-only")
    )
    disk_results, disk_wall = _timed_run(disk_engine, jobs)
    assert disk_engine.stats.executed == len(jobs)
    disk_engine.close()

    with BackgroundCacheServer(tmp_path / "store") as server:
        # -- host A: cold, remote tier attached (prefetch + publish) --
        host_a = ExperimentEngine(cache=ResultCache(
            cache_dir=tmp_path / "host-a",
            remote=RemoteCacheClient(server.url),
        ))
        results_a, remote_cold_wall = _timed_run(host_a, jobs)
        assert host_a.stats.executed == len(jobs)
        host_a.close()  # drains the write-behind publish queue
        stats_a = host_a.cache.stats.as_dict()
        assert stats_a["remote_stores"] == len(jobs)

        # -- host B: empty local cache, same remote -------------------
        host_b = ExperimentEngine(cache=ResultCache(
            cache_dir=tmp_path / "host-b",
            remote=RemoteCacheClient(server.url),
        ))
        results_b, warm_wall = _timed_run(host_b, jobs)
        stats_b = host_b.cache.stats.as_dict()
        host_b.close()

    # Gate 1: the warm second host executes nothing and matches bit
    # for bit.
    assert host_b.stats.executed == 0, (
        f"second host re-executed {host_b.stats.executed} jobs "
        f"despite a warm remote cache"
    )
    assert stats_b["remote_hits"] == len(jobs)
    assert stats_b["remote_verify_failures"] == 0
    assert _canonical(results_b) == _canonical(results_a)
    assert _canonical(results_b) == _canonical(disk_results)

    # Gate 2: the remote tier's cold-run overhead is bounded.
    overhead = remote_cold_wall / disk_wall
    assert overhead <= MAX_OVERHEAD_RATIO, (
        f"remote-tier cold run took {overhead:.2f}x the local-disk "
        f"wall (gate {MAX_OVERHEAD_RATIO}x)"
    )

    payload = {
        "samples": samples,
        "jobs": len(jobs),
        "disk_cold_wall_s": round(disk_wall, 4),
        "remote_cold_wall_s": round(remote_cold_wall, 4),
        "remote_overhead_ratio": round(overhead, 4),
        "overhead_gate": MAX_OVERHEAD_RATIO,
        "remote_warm_wall_s": round(warm_wall, 4),
        "second_host": {
            "executed": host_b.stats.executed,
            "remote_hits": stats_b["remote_hits"],
            "verify_failures": stats_b["remote_verify_failures"],
        },
        "publisher": {
            "remote_stores": stats_a["remote_stores"],
            "remote_errors": stats_a["remote_errors"],
        },
    }
    (results_dir / "BENCH_remote.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
