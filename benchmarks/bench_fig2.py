"""Fig. 2(b)/(c): the motivation statistics.

Paper reference: (b) 64% of 8-dim vectors exceed 0.9 cosine similarity
vs 18% of full-token vectors — finer granularity exposes more
redundancy; (c) vector-wise concentration reaches 82.8% sparsity,
9.8 points above the token-wise variant, above CMC and AdapTiV.
"""

from repro.eval.experiments import fig2b, fig2c
from repro.eval.reporting import format_fig2b, format_fig2c

from conftest import bench_samples


def test_fig2b(benchmark, publish):
    result = benchmark.pedantic(
        fig2b, kwargs={"num_samples": max(2, bench_samples() // 3)},
        rounds=1, iterations=1,
    )
    publish("fig2b", format_fig2b(result))

    finest = min(result.vector_sizes)
    coarsest = max(result.vector_sizes)
    benchmark.extra_info["fraction_finest"] = result.fraction_above[finest]
    benchmark.extra_info["fraction_full"] = result.fraction_above[coarsest]
    assert result.fraction_above[finest] > result.fraction_above[coarsest]


def test_fig2c(benchmark, publish):
    bars = benchmark.pedantic(
        fig2c, kwargs={"num_samples": bench_samples()},
        rounds=1, iterations=1,
    )
    publish("fig2c", format_fig2c(bars))

    by_method = {bar.method: bar for bar in bars}
    assert by_method["focus"].sparsity > by_method["focus-token"].sparsity
    assert by_method["focus"].sparsity > by_method["adaptiv"].sparsity
    assert by_method["focus"].sparsity > by_method["cmc"].sparsity
