"""Table III: architecture configuration comparison.

Paper reference values: areas 3.12 / 3.38 / 3.58 / 3.21 mm^2 and
on-chip powers 720 / 1176 / 832 / 736 mW for the systolic array,
AdapTiV, CMC and Focus respectively (28 nm, 500 MHz, 1024 PEs each).
"""

from repro.eval.experiments import table3
from repro.eval.reporting import format_table3

from conftest import bench_samples


def test_table3(benchmark, publish):
    rows = benchmark.pedantic(
        table3, kwargs={"num_samples": max(2, bench_samples() // 4)},
        rounds=1, iterations=1,
    )
    publish("table3", format_table3(rows))

    by_name = {row.name: row for row in rows}
    assert abs(by_name["systolic-array"].area_mm2 - 3.12) < 0.03
    assert abs(by_name["focus"].area_mm2 - 3.21) < 0.03
    # Focus adds <3% area over the vanilla array.
    overhead = by_name["focus"].area_mm2 / by_name["systolic-array"].area_mm2
    benchmark.extra_info["focus_area_overhead"] = overhead - 1.0
    assert overhead - 1.0 < 0.04
