"""Fig. 11: ablation study.

Paper reference: SEC alone reaches 3.15x over the dense array (1.58x
over CMC); adding the vector-wise SIC lifts it to 4.53x (another
1.44x).
"""

from repro.eval.experiments import fig11
from repro.eval.reporting import format_fig11

from conftest import bench_samples


def test_fig11(benchmark, publish):
    bars = benchmark.pedantic(
        fig11, kwargs={"num_samples": max(2, bench_samples() // 2)},
        rounds=1, iterations=1,
    )
    publish("fig11", format_fig11(bars))

    by_label = {bar.label: bar.speedup for bar in bars}
    benchmark.extra_info.update(by_label)
    assert by_label["systolic-array"] == 1.0
    assert by_label["cmc"] > 1.0
    assert by_label["ours-sec"] > by_label["cmc"]
    assert by_label["ours"] > by_label["ours-sec"]
    sic_gain = by_label["ours"] / by_label["ours-sec"]
    assert sic_gain > 1.05, "SIC must add speedup on top of SEC"
