"""Load-harness benchmark: latency under closed-loop load, fan-out,
and suffix-only re-execution for every scenario family.

Four measurements, written to ``BENCH_load.json``:

* ``virtual`` — two identical virtual-clock replays of a Poisson
  burst trace; their summaries must be byte-identical (the
  determinism contract the load tests pin, re-checked at benchmark
  scale).
* ``wall`` — a wall-clock closed loop of real HTTP requests against
  an in-process :class:`~repro.serve.server.ServeApp`, reporting the
  p50/p95/p99 latency and time-to-first-event a live client sees.
  Gated loosely: serving must stay interactive, the gate only
  catches collapse.
* ``fanout`` — one request streamed to 8 concurrent subscribers;
  every subscriber must reach the terminal event.
* ``scenarios`` — per family, a grown-samples warm-cache rerun
  (2 → 4 samples over a shared cache) demonstrating suffix-only
  re-execution: exactly the new suffix shards run, zero prefix jobs.
"""

from __future__ import annotations

import asyncio
import json

from repro.engine import ExperimentEngine, ResultCache
from repro.engine import registry
from repro.eval import reporting  # noqa: F401  (attaches formatters)
from repro.eval.eval_shards import EVAL_SHARD_KIND
from repro.load import (
    LoadRequest,
    ServeTransport,
    VirtualTransport,
    poisson_trace,
    run_closed_loop,
    run_open_loop,
)
from repro.serve import AsyncExperimentEngine
from repro.serve.server import ServeApp

FAMILIES = ("mtconv", "stream", "tenantmix")
SUBSCRIBERS = 8
WALL_REQUESTS = 6
WALL_CONCURRENCY = 3
MAX_P50_MS = 30_000.0
MAX_P99_MS = 90_000.0


def _virtual_arm() -> dict:
    trace = poisson_trace(rate=50.0, duration_s=2.0, seed=11,
                          burst_size=4)
    first, second = (
        run_open_loop(trace, VirtualTransport(seed=11),
                      virtual=True).summary()
        for _ in range(2)
    )
    assert first == second, "virtual replay must be deterministic"
    assert sum(first["histogram_ms"]["counts"]) == len(trace)
    return {"requests": len(trace), "summary": first}


async def _serve_app():
    app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
    await app.engine.warm_up()
    server = await asyncio.start_server(
        app.handle_client, "127.0.0.1", 0
    )
    return app, server, server.sockets[0].getsockname()[1]


def _against_live_server(drive):
    """Run ``drive(base_url)`` in a worker thread while an in-process
    ServeApp serves on the loop thread; return drive's result."""

    async def scenario():
        app, server, port = await _serve_app()
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, drive, f"http://127.0.0.1:{port}"
            )
        finally:
            server.close()
            await server.wait_closed()
            await app.shutdown()

    return asyncio.run(scenario())


def _wall_arm() -> dict:
    template = LoadRequest(experiments=("fig13",), samples=1)

    def drive(base_url):
        return run_closed_loop(
            [template], concurrency=WALL_CONCURRENCY,
            transport=ServeTransport(base_url), max_requests=WALL_REQUESTS,
            virtual=False,
        )

    summary = _against_live_server(drive).summary()
    assert summary["failed"] == 0, summary["errors"]
    assert summary["requests"] == WALL_REQUESTS
    assert summary["concurrency"]["peak"] <= WALL_CONCURRENCY
    assert sum(summary["histogram_ms"]["counts"]) == WALL_REQUESTS
    return summary


def _fanout_arm() -> dict:
    request = LoadRequest(experiments=("fig13",), samples=1,
                          subscribers=SUBSCRIBERS)

    def drive(base_url):
        return run_closed_loop(
            [request], concurrency=1, transport=ServeTransport(base_url),
            max_requests=1, virtual=False,
        )

    summary = _against_live_server(drive).summary()
    assert summary["failed"] == 0, summary["errors"]
    assert summary["fanout"]["subscribers"] == SUBSCRIBERS
    # Every subscriber saw at least run-started + run-done.
    assert summary["fanout"]["events"] >= 2 * SUBSCRIBERS
    return summary


def _scenario_arm() -> dict:
    out = {}
    for family in FAMILIES:
        cache = ResultCache()
        cold = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            registry.run_experiments(
                ["scenario"], cold, scenario=family, num_samples=2,
                methods=("dense",),
            )
            cold_shards = cold.stats.executed_by_kind[EVAL_SHARD_KIND]
        finally:
            cold.close()
        warm = ExperimentEngine(eval_shards=1, cache=cache)
        try:
            registry.run_experiments(
                ["scenario"], warm, scenario=family, num_samples=4,
                methods=("dense",),
            )
            warm_shards = warm.stats.executed_by_kind[EVAL_SHARD_KIND]
            prefix_hits = cache.stats.hits_by_kind[EVAL_SHARD_KIND]
        finally:
            warm.close()
        out[family] = {
            "cold_samples": 2,
            "grown_samples": 4,
            "cold_shards_executed": cold_shards,
            "grown_shards_executed": warm_shards,
            "prefix_shards_reexecuted": warm_shards - cold_shards,
            "prefix_cache_hits": prefix_hits,
        }
    return out


def test_load_benchmark(results_dir, capsys):
    virtual = _virtual_arm()
    wall = _wall_arm()
    fanout = _fanout_arm()
    scenarios = _scenario_arm()

    payload = {
        "virtual": virtual,
        "wall": wall,
        "fanout": fanout,
        "scenarios": scenarios,
        "gate": {
            "max_latency_p50_ms": MAX_P50_MS,
            "max_latency_p99_ms": MAX_P99_MS,
            "fanout_subscribers": SUBSCRIBERS,
            "prefix_shards_reexecuted": 0,
        },
    }
    (results_dir / "BENCH_load.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    latency = wall["latency_ms"]
    with capsys.disabled():
        print(
            f"\n[load] closed loop: {wall['requests']} requests, "
            f"p50 {latency['p50']:.0f} ms, p99 {latency['p99']:.0f} ms; "
            f"fan-out {fanout['fanout']['events']} events to "
            f"{SUBSCRIBERS} subscribers; suffix-only reruns: "
            + ", ".join(
                f"{family}+{stats['grown_shards_executed']}"
                for family, stats in scenarios.items()
            )
            + "\n"
        )

    # Regression gates: interactivity, fan-out, and prefix stability.
    assert latency["p50"] <= MAX_P50_MS
    assert latency["p99"] <= MAX_P99_MS
    assert fanout["fanout"]["subscribers"] == SUBSCRIBERS
    for family, stats in scenarios.items():
        # Each family re-executes only the suffix on the grown rerun.
        assert stats["prefix_shards_reexecuted"] == 0, family
        assert stats["grown_shards_executed"] == 2, family
        assert stats["prefix_cache_hits"] == stats["cold_shards_executed"], \
            family
