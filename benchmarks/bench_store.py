"""Run-store benchmark: write-through overhead and replay throughput.

Two measurements, written to ``BENCH_store.json``:

* ``fanout`` — the serving benchmark's 8-subscriber JSON-lines fan-out
  run twice over the same synthetic event stream: once ring-only and
  once with every append writing through to a SQLite
  :class:`~repro.store.runstore.RunStore`.  The pair quantifies what
  durability costs on the serving hot path (``overhead_ratio``).
* ``replay`` — events/sec re-streaming the stored run through
  ``repro replay``'s framing path (:func:`repro.store.replay.
  iter_frames`), for both SSE and JSON-lines framing.

Gated loosely (a store-backed server must stay interactive and replay
must beat any plausible live consumer) — the JSON is the trajectory
record, the gate only catches collapse.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.engine import ExperimentEngine
from repro.engine.jobs import EvalJob
from repro.engine.scheduler import ProgressEvent
from repro.serve import AsyncExperimentEngine, events as codec
from repro.serve.server import Run, RunLog, ServeApp
from repro.store import RunStore, iter_frames

SUBSCRIBERS = 8
FANOUT_EVENTS = 2000
MIN_EVENTS_PER_SEC = 1000.0
MIN_REPLAY_EVENTS_PER_SEC = 5000.0


async def _start(app: ServeApp):
    server = await asyncio.start_server(
        app.handle_client, "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


async def _request(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw


def _wire_events(count: int, run_id: str) -> list[dict]:
    job = EvalJob(
        model="llava-video", dataset="videomme", method="focus",
        num_samples=8, seed=0,
    )
    events = [codec.encode_run_started(run_id, ["synthetic"], {})]
    events += [
        codec.encode_progress(ProgressEvent(
            action="completed", job=job, completed=i + 1,
            total=count, elapsed_s=0.0, seq=i + 1,
        ))
        for i in range(count)
    ]
    events.append(codec.encode_run_done(run_id, {}, 0.0))
    return events


async def _recorded_run(
    run_id: str, events: list[dict], store: RunStore | None
) -> tuple[Run, float]:
    """A finished synthetic run; returns (run, append wall seconds)."""
    if store is not None:
        store.create_run(run_id, ["synthetic"], {})
    log = RunLog(
        capacity=len(events) + 2, store=store, run_id=run_id
    )
    run = Run(
        run_id=run_id, experiments=["synthetic"], params={},
        log=log, handle=None, status="done",
    )
    start = time.perf_counter()
    for event in events:
        await log.append(event)
    return run, time.perf_counter() - start


async def _fanout(run_id: str, store: RunStore | None) -> dict:
    """Aggregate delivered events/sec to 8 JSON-lines subscribers."""
    events = _wire_events(FANOUT_EVENTS, run_id)
    app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
    run, append_s = await _recorded_run(run_id, events, store)
    app.runs[run.run_id] = run
    server, port = await _start(app)
    try:
        async def subscribe():
            raw = await _request(
                port, f"/runs/{run_id}/events?format=jsonl"
            )
            lines = raw.partition(b"\r\n\r\n")[2].decode().splitlines()
            assert len(lines) == len(events)
            return len(lines)

        start = time.perf_counter()
        counts = await asyncio.gather(
            *(subscribe() for _ in range(SUBSCRIBERS))
        )
        wall_s = time.perf_counter() - start
    finally:
        server.close()
        await server.wait_closed()
        await app.shutdown()
    delivered = sum(counts)
    return {
        "subscribers": SUBSCRIBERS,
        "events_per_subscriber": len(events),
        "append_wall_s": append_s,
        "appends_per_sec": len(events) / append_s,
        "wall_s": wall_s,
        "events_per_sec": delivered / wall_s,
    }


def _replay_throughput(store: RunStore, run_id: str) -> dict:
    total = store.last_event_id(run_id)
    out = {}
    for label, jsonl in (("sse", False), ("jsonl", True)):
        start = time.perf_counter()
        chars = sum(
            len(piece)
            for piece in iter_frames(store, run_id, jsonl=jsonl)
        )
        wall_s = time.perf_counter() - start
        out[label] = {
            "events": total,
            "chars": chars,
            "wall_s": wall_s,
            "events_per_sec": total / wall_s,
        }
    return out


def test_store_benchmark(results_dir, capsys):
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(Path(tmp) / "bench.sqlite")

        async def scenario():
            ring_only = await _fanout("bench-ring", store=None)
            through = await _fanout("bench-store", store=store)
            return ring_only, through

        ring_only, through = asyncio.run(scenario())
        replay = _replay_throughput(store, "bench-store")
        store.close()

    overhead = (
        ring_only["events_per_sec"] / through["events_per_sec"]
    )
    payload = {
        "fanout": {
            "ring_only": ring_only,
            "write_through": through,
            "overhead_ratio": overhead,
        },
        "replay": replay,
        "gate": {
            "min_events_per_sec": MIN_EVENTS_PER_SEC,
            "min_replay_events_per_sec": MIN_REPLAY_EVENTS_PER_SEC,
        },
    }
    (results_dir / "BENCH_store.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    with capsys.disabled():
        print(
            f"\n[store] fan-out {through['events_per_sec']:.0f} "
            f"events/s write-through vs "
            f"{ring_only['events_per_sec']:.0f} ring-only "
            f"(x{overhead:.2f}); replay "
            f"{replay['sse']['events_per_sec']:.0f} events/s sse, "
            f"{replay['jsonl']['events_per_sec']:.0f} events/s jsonl\n"
        )

    assert through["events_per_sec"] >= MIN_EVENTS_PER_SEC
    for framing in replay.values():
        assert framing["events_per_sec"] >= MIN_REPLAY_EVENTS_PER_SEC
