"""Fig. 13: concentrated tile-length distribution and utilization.

Paper reference: tile lengths spread widely but extremes are rare; the
array sustains an average utilization of 92.2%.
"""

from repro.eval.experiments import fig13
from repro.eval.reporting import format_fig13

from conftest import bench_samples


def test_fig13(benchmark, publish):
    result = benchmark.pedantic(
        fig13, kwargs={"num_samples": max(2, bench_samples() // 2)},
        rounds=1, iterations=1,
    )
    publish("fig13", format_fig13(result))

    benchmark.extra_info["avg_utilization"] = result.average_utilization
    assert 0.6 < result.average_utilization <= 1.0
    assert result.tile_lengths.min() >= 0
    assert result.tile_lengths.max() <= 1024
