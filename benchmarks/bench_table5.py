"""Table V: generalization to image VLMs (one-frame videos).

Paper reference: on Llava-OneVision and Qwen2.5-VL image benchmarks,
both AdapTiV and Focus speed up inference (1.6-5.2x), with Focus
keeping accuracy closer to dense.
"""

from repro.eval.experiments import table5
from repro.eval.reporting import format_table5

from conftest import bench_samples


def test_table5(benchmark, publish):
    rows = benchmark.pedantic(
        table5, kwargs={"num_samples": bench_samples()},
        rounds=1, iterations=1,
    )
    publish("table5", format_table5(rows))

    assert all(row.ours_speedup > 1.0 for row in rows)
    mean_speedup = sum(row.ours_speedup for row in rows) / len(rows)
    benchmark.extra_info["ours_mean_speedup"] = mean_speedup
    # Accuracy stays close to dense even without temporal redundancy.
    for row in rows:
        assert row.ours_acc >= row.dense_acc - 25.0
