"""Fig. 12: memory-access analysis.

Paper reference: Focus reduces DRAM traffic 4.9x (to 0.21 of dense)
and compresses the average input matrix 5.6x (to 0.18), vs CMC's 0.76
traffic at 46% sparsity — the cost of off-chip, token-wise compression.
"""

from repro.eval.experiments import fig12
from repro.eval.reporting import format_fig12

from conftest import bench_samples


def test_fig12(benchmark, publish):
    rows = benchmark.pedantic(
        fig12, kwargs={"num_samples": max(2, bench_samples() // 2)},
        rounds=1, iterations=1,
    )
    publish("fig12", format_fig12(rows))

    mean = rows[-1]
    assert mean.model == "mean"
    benchmark.extra_info["focus_dram_ratio"] = mean.dram_ratio["focus"]
    benchmark.extra_info["focus_act_ratio"] = mean.activation_ratio["focus"]
    assert mean.dram_ratio["focus"] < 0.6
    assert mean.dram_ratio["focus"] < mean.dram_ratio["cmc"]
    assert mean.dram_ratio["focus"] < mean.dram_ratio["adaptiv"]
    assert mean.activation_ratio["focus"] < mean.activation_ratio["cmc"]
