"""Fig. 10: design space exploration.

Paper reference: (a) m-tile 1024 costs only ~19% latency over
full-height tiles while cutting buffer demand; (b) vector size 32
balances array MACs against scatter-accumulator ops; (c) 2x2x2 blocks
suffice, temporal extent helping most; (d) 64 scatter accumulators
reach within 5% of a 160-lane design.
"""

from repro.eval.experiments import fig10a, fig10b, fig10c, fig10d
from repro.eval.reporting import format_sweep

from conftest import bench_samples


def _samples() -> int:
    return max(2, bench_samples() // 2)


def test_fig10a_tile_size(benchmark, publish):
    points = benchmark.pedantic(
        fig10a, kwargs={"num_samples": _samples()}, rounds=1, iterations=1,
    )
    publish("fig10a", format_sweep("FIG 10(a): GEMM m-tile size", points))
    # Smaller tiles truncate comparison windows -> latency rises.
    assert points[-1].latency >= points[0].latency
    # Buffer demand shrinks with the tile.
    buffers = [p.extra["output_buffer_kb"] for p in points]
    assert buffers[-1] < buffers[0]


def test_fig10b_vector_size(benchmark, publish):
    points = benchmark.pedantic(
        fig10b, kwargs={"num_samples": _samples()}, rounds=1, iterations=1,
    )
    publish("fig10b", format_sweep("FIG 10(b): vector size", points))
    by_label = {p.label: p for p in points}
    # Finer vectors -> fewer array MACs but more accumulator ops.
    assert (by_label["8"].extra["array_gops"]
            <= by_label["96"].extra["array_gops"] * 1.2)
    assert (by_label["8"].extra["accumulator_gops"]
            > by_label["96"].extra["accumulator_gops"])


def test_fig10c_block_size(benchmark, publish):
    points = benchmark.pedantic(
        fig10c, kwargs={"num_samples": _samples()}, rounds=1, iterations=1,
    )
    publish("fig10c", format_sweep("FIG 10(c): SIC block size", points))
    by_label = {p.label: p for p in points}
    # Block 1x1x1 disables similarity concentration -> slowest.
    assert by_label["111"].latency >= by_label["222"].latency
    # Temporal extension helps (222 vs 122).
    assert by_label["222"].latency <= by_label["122"].latency * 1.05


def test_fig10d_scatter_accumulators(benchmark, publish):
    points = benchmark.pedantic(
        fig10d, kwargs={"num_samples": _samples()}, rounds=1, iterations=1,
    )
    publish("fig10d", format_sweep("FIG 10(d): scatter accumulators",
                                   points))
    by_label = {p.label: p for p in points}
    # 64 accumulators come within ~5% of the largest design.
    assert by_label["64"].latency <= by_label["160"].latency * 1.08
