"""Single-sample forward-pass benchmark: reference vs wavefront matcher.

The acceptance gate for the wavefront-matcher PR: on every model-zoo
entry, a full Focus forward pass under the wavefront (level-scheduled)
matcher must be *trace-for-trace identical* to the retained serial
reference, and on the large zoo config (the widest/deepest model,
``qwen25-vl``, on the largest token stream, ``videomme``) the wavefront
forward must be at least ``SPEEDUP_GATE`` x faster.  The run doubles as
the telemetry emitter: ``benchmarks/results/BENCH_forward.json``
records per-model wall-clock for both matcher implementations, the
speedup, token counts, and matcher comparison counts, giving future
PRs a perf trajectory for the forward hot path like BENCH_sim.json /
BENCH_eval.json provide for the simulation and evaluation phases.
"""

import json
import time

from repro.config import FocusConfig
from repro.core.pipeline import FocusPlugin
from repro.eval.runner import ModelCache
from repro.model.zoo import MODEL_CONFIGS
from repro.workloads.datasets import make_dataset_span

MODEL_STREAMS = {
    "llava-video": "videomme",
    "llava-onevision": "mvbench",
    "minicpm": "mlvu",
    "qwen25-vl": "videomme",
}
"""Token stream per zoo entry.  ``qwen25-vl`` (the largest model) runs
the largest stream — that pair is the gated "large zoo config"."""

LARGE_CONFIG = ("qwen25-vl", "videomme")
SPEEDUP_GATE = 2.0
ROUNDS = 3
"""Best-of-N timing; the minimum is robust against scheduler noise."""


def _timed_forward(model, sample, mode):
    """Best-of-ROUNDS wall clock and the last outcome for one mode."""
    best = float("inf")
    outcome = None
    for _ in range(ROUNDS):
        plugin = FocusPlugin(model, FocusConfig(matcher=mode))
        start = time.perf_counter()
        outcome = model.forward(sample, plugin)
        best = min(best, time.perf_counter() - start)
    return best, outcome


def test_forward_wavefront_parity_and_speedup(benchmark, results_dir):
    entries = {}
    for name in MODEL_CONFIGS:
        model = ModelCache.get(name)
        dataset = MODEL_STREAMS[name]
        sample, = make_dataset_span(
            dataset, model.config.layout, 0, 1, seed=0
        )
        ref_wall, ref_out = _timed_forward(model, sample, "reference")
        wav_wall, wav_out = _timed_forward(model, sample, "wavefront")

        # The tentpole guarantee: the wavefront forward is bit-identical
        # to the serial reference — same prediction, same trace, every
        # GEMM, every tile length, every comparison count.
        assert wav_out.predicted_index == ref_out.predicted_index, name
        assert wav_out.final_tokens == ref_out.final_tokens, name
        assert wav_out.trace == ref_out.trace, name

        entries[name] = {
            "dataset": dataset,
            "tokens": ref_out.trace.initial_tokens,
            "hidden": model.config.hidden,
            "layers": model.config.num_layers,
            "reference_wall_s": round(ref_wall, 5),
            "wavefront_wall_s": round(wav_wall, 5),
            "speedup": round(ref_wall / wav_wall, 3),
            "sic_comparisons": ref_out.trace.sic_comparisons,
        }

    large_model, large_dataset = LARGE_CONFIG
    large = entries[large_model]
    assert large["dataset"] == large_dataset
    assert large["speedup"] >= SPEEDUP_GATE, (
        f"wavefront forward speedup {large['speedup']}x on "
        f"{LARGE_CONFIG} below the {SPEEDUP_GATE}x gate"
    )

    def _one_wavefront_forward():
        model = ModelCache.get(large_model)
        sample, = make_dataset_span(
            large_dataset, model.config.layout, 0, 1, seed=0
        )
        plugin = FocusPlugin(model, FocusConfig(matcher="wavefront"))
        return model.forward(sample, plugin)

    benchmark.pedantic(_one_wavefront_forward, rounds=1, iterations=1)
    benchmark.extra_info["large_config_speedup"] = large["speedup"]

    payload = {
        "gate": {
            "model": large_model,
            "dataset": large_dataset,
            "min_speedup": SPEEDUP_GATE,
            "speedup": large["speedup"],
        },
        "rounds": ROUNDS,
        "models": entries,
    }
    (results_dir / "BENCH_forward.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
