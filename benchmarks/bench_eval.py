"""Sharded per-sample evaluation over a video grid.

The acceptance gate for the eval-sharding PR: for a grid of (model,
method) cells — dense baseline, focus, and an INT8 focus arm — every
cell evaluated as per-sample-span ``eval-shard`` jobs on a 4-worker
engine must be *bit-identical* to the serial whole-cell evaluation,
and growing ``--samples`` must execute only the new suffix spans with
the prefix served from the span cache.  The run doubles as the
telemetry emitter: ``benchmarks/results/BENCH_eval.json`` records
wall-clock for the serial, sharded-cold, and grown (prefix-reuse)
sweeps, the shard count, the cache hit rate, and the prefix-reuse hit
rate, giving future PRs a perf trajectory for the evaluation phase
like BENCH_sim.json provides for simulation.

The batched-forward arm (``test_batched_forward_throughput``) rides
on the same file: serial vs ``forward_batch=8`` wall-clock on the
large zoo config, the measured speedup against its no-regression
gate, and the shape-bucket statistics of the batched sweep.
"""

import json
import time

from repro.config import FocusConfig
from repro.core.batched import bucket_samples
from repro.engine import EvalJob, ExperimentEngine
from repro.eval.eval_shards import EVAL_SHARD_KIND
from repro.eval.runner import ModelCache, evaluate_samples
from repro.model.zoo import VIDEO_MODELS
from repro.workloads.datasets import make_dataset_span

from conftest import bench_samples

DATASET = "videomme"
GRID_METHODS = ("dense", "focus")
SHARD_WORKERS = 4

LARGE_CONFIG = ("qwen25-vl", "videomme")
FORWARD_BATCH = 8
BATCH_BENCH_SAMPLES = 16
"""Fixed, not ``REPRO_BENCH_SAMPLES``: the batched arm needs enough
samples to fill ``FORWARD_BATCH``-wide stacks twice over."""
BATCH_ROUNDS = 3
BATCHED_SPEEDUP_GATE = 0.9
"""Batching must not regress the serial loop beyond timer noise.

The 2x aspiration assumes stacked GEMMs recover multi-core BLAS
utilization that per-sample GEMMs leave idle; on a single-core host
(this repo's measurement class) both paths hit the same BLAS floor,
the matcher's gather traffic is identical by construction, and the
measured gain is ~1.0-1.2x (batch plans amortize wavefront schedules
and skip per-sample block copies).  The recorded ``speedup`` tracks
the real number per run; the gate only rejects a real regression,
because a >=1.0 wall-clock gate between two closely matched arms
flaps on shared runners."""


def _grid_jobs(samples):
    """Whole-cell jobs: the video models x methods grid plus an INT8 arm."""
    jobs = {
        (model, method, False): EvalJob(
            model=model, dataset=DATASET, method=method,
            num_samples=samples, seed=0,
        )
        for model in VIDEO_MODELS
        for method in GRID_METHODS
    }
    jobs[("llava-video", "focus", True)] = EvalJob(
        model="llava-video", dataset=DATASET, method="focus",
        num_samples=samples, seed=0, quantized=True,
    )
    return jobs


def test_eval_sharding_parity_and_telemetry(benchmark, results_dir):
    samples = max(2, bench_samples() // 2)
    jobs = _grid_jobs(samples)

    serial_engine = ExperimentEngine(workers=1)
    serial_start = time.perf_counter()
    serial = serial_engine.run(list(jobs.values()))
    serial_wall = time.perf_counter() - serial_start

    sharded_engine = ExperimentEngine(
        workers=SHARD_WORKERS, eval_shards=1
    )

    def sharded_sweep():
        return sharded_engine.run(list(jobs.values()))

    cold_start = time.perf_counter()
    sharded = benchmark.pedantic(sharded_sweep, rounds=1, iterations=1)
    cold_wall = time.perf_counter() - cold_start

    # The tentpole guarantee: sharded == serial, bit for bit, on every
    # cell of the grid (focus, dense baseline, and the INT8 arm).
    for key, job in jobs.items():
        assert sharded[job] == serial[job], key
    shards_executed = sharded_engine.stats.executed_by_kind.get(
        EVAL_SHARD_KIND, 0
    )
    assert shards_executed == len(jobs) * samples

    # Prefix reuse: doubling every cell's sample count on the same
    # cache executes only the new suffix spans.
    grown_jobs = _grid_jobs(samples * 2)
    cache = sharded_engine.cache
    hits_before = cache.stats.hits_by_kind.get(EVAL_SHARD_KIND, 0)
    grown_engine = ExperimentEngine(
        workers=SHARD_WORKERS, eval_shards=1, cache=cache
    )
    grown_start = time.perf_counter()
    grown = grown_engine.run(list(grown_jobs.values()))
    grown_wall = time.perf_counter() - grown_start

    suffix_executed = grown_engine.stats.executed_by_kind.get(
        EVAL_SHARD_KIND, 0
    )
    prefix_hits = (
        cache.stats.hits_by_kind.get(EVAL_SHARD_KIND, 0) - hits_before
    )
    assert suffix_executed == len(jobs) * samples
    assert prefix_hits == len(jobs) * samples
    for key, job in jobs.items():
        cell = grown[grown_jobs[key]]
        assert cell.correct[:samples] == serial[job].correct, key
        assert cell.sparsities[:samples] == serial[job].sparsities, key

    prefix_lookups = prefix_hits + suffix_executed
    hit_rate = cache.stats.hit_rate
    benchmark.extra_info["grid_cells"] = len(jobs)
    benchmark.extra_info["shards_executed"] = shards_executed
    benchmark.extra_info["cache_hit_rate"] = hit_rate

    payload = {
        "samples": samples,
        "grid_cells": len(jobs),
        "workers": SHARD_WORKERS,
        "serial_wall_s": round(serial_wall, 4),
        "sharded_cold_wall_s": round(cold_wall, 4),
        "grown_wall_s": round(grown_wall, 4),
        "shards_executed": shards_executed,
        "cache_hit_rate": round(hit_rate, 4),
        "cache": cache.stats.as_dict(),
        "prefix_reuse": {
            "grown_samples": samples * 2,
            "suffix_shards_executed": suffix_executed,
            "prefix_span_hits": prefix_hits,
            "hit_rate": round(prefix_hits / prefix_lookups, 4),
        },
    }
    (results_dir / "BENCH_eval.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    serial_engine.close()
    sharded_engine.close()
    grown_engine.close()


def test_batched_forward_throughput(benchmark, results_dir):
    """The batched-forward acceptance arm: one wavefront pass per
    eval-shard stack must be bit-identical to the serial loop and at
    least :data:`BATCHED_SPEEDUP_GATE` x its cell throughput on the
    large zoo config."""
    model_name, dataset = LARGE_CONFIG
    model = ModelCache.get(model_name)
    samples = make_dataset_span(
        dataset, model.config.layout, 0, BATCH_BENCH_SAMPLES, seed=0
    )
    buckets = bucket_samples(samples)

    def cell(config):
        return evaluate_samples(
            model, samples, "focus", config=config,
            model_name=model_name, dataset_name=dataset,
        )

    def best_of(config):
        wall, result = float("inf"), None
        for _ in range(BATCH_ROUNDS):
            start = time.perf_counter()
            result = cell(config)
            wall = min(wall, time.perf_counter() - start)
        return wall, result

    serial_wall, serial_result = best_of(FocusConfig())
    batched_config = FocusConfig(forward_batch=FORWARD_BATCH)
    benchmark.pedantic(
        lambda: cell(batched_config), rounds=1, iterations=1
    )
    batched_wall, batched_result = best_of(batched_config)

    # The tentpole guarantee: stacking changes wall-clock only.
    assert batched_result == serial_result

    speedup = serial_wall / batched_wall
    assert speedup >= BATCHED_SPEEDUP_GATE, (
        f"batched forward {speedup:.2f}x on {LARGE_CONFIG} fell below "
        f"the {BATCHED_SPEEDUP_GATE}x regression gate"
    )
    benchmark.extra_info["batched_speedup"] = round(speedup, 3)

    results_path = results_dir / "BENCH_eval.json"
    payload = (
        json.loads(results_path.read_text())
        if results_path.exists() else {}
    )
    payload["batched_forward"] = {
        "model": model_name,
        "dataset": dataset,
        "method": "focus",
        "samples": BATCH_BENCH_SAMPLES,
        "batch_size": FORWARD_BATCH,
        "rounds": BATCH_ROUNDS,
        "serial_wall_s": round(serial_wall, 4),
        "batched_wall_s": round(batched_wall, 4),
        "speedup": round(speedup, 3),
        "speedup_gate": BATCHED_SPEEDUP_GATE,
        "buckets": {
            "count": len(buckets),
            "sizes": sorted(
                (len(bucket) for bucket in buckets), reverse=True
            ),
            "chunks": sum(
                -(-len(bucket) // FORWARD_BATCH) for bucket in buckets
            ),
        },
    }
    results_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
