"""Sharded per-sample evaluation over a video grid.

The acceptance gate for the eval-sharding PR: for a grid of (model,
method) cells — dense baseline, focus, and an INT8 focus arm — every
cell evaluated as per-sample-span ``eval-shard`` jobs on a 4-worker
engine must be *bit-identical* to the serial whole-cell evaluation,
and growing ``--samples`` must execute only the new suffix spans with
the prefix served from the span cache.  The run doubles as the
telemetry emitter: ``benchmarks/results/BENCH_eval.json`` records
wall-clock for the serial, sharded-cold, and grown (prefix-reuse)
sweeps, the shard count, the cache hit rate, and the prefix-reuse hit
rate, giving future PRs a perf trajectory for the evaluation phase
like BENCH_sim.json provides for simulation.

The batched-forward arm (``test_batched_forward_throughput``) rides
on the same file: serial vs ``forward_batch=8`` wall-clock on the
large zoo config, the measured speedup against its no-regression
gate, and the shape-bucket statistics of the batched sweep.
"""

import json
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.config import FocusConfig
from repro.core.batched import bucket_samples
from repro.engine import EvalJob, ExperimentEngine
from repro.eval.eval_shards import EVAL_SHARD_KIND
from repro.eval.runner import ModelCache, evaluate_samples
from repro.model.zoo import VIDEO_MODELS
from repro.workloads.datasets import make_dataset_span

from conftest import bench_samples

DATASET = "videomme"
GRID_METHODS = ("dense", "focus")
SHARD_WORKERS = 4

LARGE_CONFIG = ("qwen25-vl", "videomme")
FORWARD_BATCH = 8
BATCH_BENCH_SAMPLES = 16
"""Fixed, not ``REPRO_BENCH_SAMPLES``: the batched arm needs enough
samples to fill ``FORWARD_BATCH``-wide stacks twice over."""
BATCH_ROUNDS = 3
BATCHED_SPEEDUP_GATE = 0.9
"""Batching must not regress the serial loop beyond timer noise.

The 2x aspiration assumes stacked GEMMs recover multi-core BLAS
utilization that per-sample GEMMs leave idle; on a single-core host
both paths hit the same BLAS floor, the matcher's gather traffic is
identical by construction, and the measured gain is ~1.0-1.2x (batch
plans amortize wavefront schedules and skip per-sample block copies).
The recorded ``speedup`` tracks the real number per run; on hosts
whose *measured* GEMM floor actually lifts under stacking
(:class:`BlasMeasurement`), the gate rises to
:data:`THREADED_SPEEDUP_GATE` — a >=1.0 wall-clock gate between two
closely matched arms flaps on shared single-core runners, so the
0.9x guard stays everywhere else."""

THREADED_SPEEDUP_GATE = 1.1
"""The raised gate on hosts where stacked GEMMs measurably beat
looped ones: batching must then deliver a real win, not just parity."""

PROBE_LIFT_THRESHOLD = 1.3
"""Minimum stacked-over-looped GEMM probe speedup before a host
counts as *threaded* for gating purposes — comfortably above timer
noise, comfortably below any real multi-core BLAS win."""


@dataclass(frozen=True)
class BlasMeasurement:
    """The host's measurement class for GEMM-bound benchmarks.

    ``cores`` and ``blas_threads`` describe the configured ceiling
    (CPU count clipped by the usual thread-cap environment
    variables); ``probe_speedup`` is the *measured* stacked-vs-looped
    GEMM ratio on a small fixed workload.  ``threaded`` — and with it
    the raised batched-forward gate — requires both: a multi-thread
    configuration *and* a probe that actually lifted, so a container
    with inflated ``os.cpu_count()`` but a pinned single-core quota
    still gets the single-core guard.
    """

    cores: int
    blas_threads: int
    probe_speedup: float
    threaded: bool

    @property
    def speedup_gate(self) -> float:
        return THREADED_SPEEDUP_GATE if self.threaded \
            else BATCHED_SPEEDUP_GATE

    @classmethod
    def detect(cls) -> "BlasMeasurement":
        cores = os.cpu_count() or 1
        blas_threads = cores
        for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "BLIS_NUM_THREADS"):
            value = os.environ.get(var, "")
            if value.isdigit() and int(value) >= 1:
                blas_threads = min(blas_threads, int(value))
        probe = cls._probe_stacking_lift()
        threaded = (
            blas_threads > 1 and probe >= PROBE_LIFT_THRESHOLD
        )
        return cls(
            cores=cores, blas_threads=blas_threads,
            probe_speedup=round(probe, 3), threaded=threaded,
        )

    @staticmethod
    def _probe_stacking_lift(
        batch: int = 16, dim: int = 96, rounds: int = 3
    ) -> float:
        """Best-of stacked-vs-looped GEMM wall ratio (>1 = lift)."""
        rng = np.random.default_rng(0)
        lhs = rng.standard_normal((batch, dim, dim))
        rhs = rng.standard_normal((dim, dim))
        stacked_lhs = lhs.reshape(batch * dim, dim)
        looped = stacked = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for index in range(batch):
                lhs[index] @ rhs
            looped = min(looped, time.perf_counter() - start)
            start = time.perf_counter()
            stacked_lhs @ rhs
            stacked = min(stacked, time.perf_counter() - start)
        return looped / max(stacked, 1e-9)


def _grid_jobs(samples):
    """Whole-cell jobs: the video models x methods grid plus an INT8 arm."""
    jobs = {
        (model, method, False): EvalJob(
            model=model, dataset=DATASET, method=method,
            num_samples=samples, seed=0,
        )
        for model in VIDEO_MODELS
        for method in GRID_METHODS
    }
    jobs[("llava-video", "focus", True)] = EvalJob(
        model="llava-video", dataset=DATASET, method="focus",
        num_samples=samples, seed=0, quantized=True,
    )
    return jobs


def test_eval_sharding_parity_and_telemetry(benchmark, results_dir):
    samples = max(2, bench_samples() // 2)
    jobs = _grid_jobs(samples)

    serial_engine = ExperimentEngine(workers=1)
    serial_start = time.perf_counter()
    serial = serial_engine.run(list(jobs.values()))
    serial_wall = time.perf_counter() - serial_start

    sharded_engine = ExperimentEngine(
        workers=SHARD_WORKERS, eval_shards=1
    )

    def sharded_sweep():
        return sharded_engine.run(list(jobs.values()))

    cold_start = time.perf_counter()
    sharded = benchmark.pedantic(sharded_sweep, rounds=1, iterations=1)
    cold_wall = time.perf_counter() - cold_start

    # The tentpole guarantee: sharded == serial, bit for bit, on every
    # cell of the grid (focus, dense baseline, and the INT8 arm).
    for key, job in jobs.items():
        assert sharded[job] == serial[job], key
    shards_executed = sharded_engine.stats.executed_by_kind.get(
        EVAL_SHARD_KIND, 0
    )
    assert shards_executed == len(jobs) * samples

    # Prefix reuse: doubling every cell's sample count on the same
    # cache executes only the new suffix spans.
    grown_jobs = _grid_jobs(samples * 2)
    cache = sharded_engine.cache
    hits_before = cache.stats.hits_by_kind.get(EVAL_SHARD_KIND, 0)
    grown_engine = ExperimentEngine(
        workers=SHARD_WORKERS, eval_shards=1, cache=cache
    )
    grown_start = time.perf_counter()
    grown = grown_engine.run(list(grown_jobs.values()))
    grown_wall = time.perf_counter() - grown_start

    suffix_executed = grown_engine.stats.executed_by_kind.get(
        EVAL_SHARD_KIND, 0
    )
    prefix_hits = (
        cache.stats.hits_by_kind.get(EVAL_SHARD_KIND, 0) - hits_before
    )
    assert suffix_executed == len(jobs) * samples
    assert prefix_hits == len(jobs) * samples
    for key, job in jobs.items():
        cell = grown[grown_jobs[key]]
        assert cell.correct[:samples] == serial[job].correct, key
        assert cell.sparsities[:samples] == serial[job].sparsities, key

    prefix_lookups = prefix_hits + suffix_executed
    hit_rate = cache.stats.hit_rate
    benchmark.extra_info["grid_cells"] = len(jobs)
    benchmark.extra_info["shards_executed"] = shards_executed
    benchmark.extra_info["cache_hit_rate"] = hit_rate

    payload = {
        "samples": samples,
        "grid_cells": len(jobs),
        "workers": SHARD_WORKERS,
        "serial_wall_s": round(serial_wall, 4),
        "sharded_cold_wall_s": round(cold_wall, 4),
        "grown_wall_s": round(grown_wall, 4),
        "shards_executed": shards_executed,
        "cache_hit_rate": round(hit_rate, 4),
        "cache": cache.stats.as_dict(),
        "prefix_reuse": {
            "grown_samples": samples * 2,
            "suffix_shards_executed": suffix_executed,
            "prefix_span_hits": prefix_hits,
            "hit_rate": round(prefix_hits / prefix_lookups, 4),
        },
    }
    (results_dir / "BENCH_eval.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    serial_engine.close()
    sharded_engine.close()
    grown_engine.close()


def test_batched_forward_throughput(benchmark, results_dir):
    """The batched-forward acceptance arm: one wavefront pass per
    eval-shard stack must be bit-identical to the serial loop and at
    least the measurement class's gate (:data:`BATCHED_SPEEDUP_GATE`,
    or :data:`THREADED_SPEEDUP_GATE` on hosts whose GEMM floor
    measurably lifts under stacking) x its cell throughput on the
    large zoo config."""
    measurement = BlasMeasurement.detect()
    model_name, dataset = LARGE_CONFIG
    model = ModelCache.get(model_name)
    samples = make_dataset_span(
        dataset, model.config.layout, 0, BATCH_BENCH_SAMPLES, seed=0
    )
    buckets = bucket_samples(samples)

    def cell(config):
        return evaluate_samples(
            model, samples, "focus", config=config,
            model_name=model_name, dataset_name=dataset,
        )

    def best_of(config):
        wall, result = float("inf"), None
        for _ in range(BATCH_ROUNDS):
            start = time.perf_counter()
            result = cell(config)
            wall = min(wall, time.perf_counter() - start)
        return wall, result

    serial_wall, serial_result = best_of(FocusConfig())
    batched_config = FocusConfig(forward_batch=FORWARD_BATCH)
    benchmark.pedantic(
        lambda: cell(batched_config), rounds=1, iterations=1
    )
    batched_wall, batched_result = best_of(batched_config)

    # The tentpole guarantee: stacking changes wall-clock only.
    assert batched_result == serial_result

    speedup = serial_wall / batched_wall
    gate = measurement.speedup_gate
    assert speedup >= gate, (
        f"batched forward {speedup:.2f}x on {LARGE_CONFIG} fell below "
        f"the {gate}x gate ({'threaded' if measurement.threaded else 'single-core'} "
        f"measurement class: {measurement.blas_threads} BLAS threads, "
        f"probe lift {measurement.probe_speedup}x)"
    )
    benchmark.extra_info["batched_speedup"] = round(speedup, 3)

    results_path = results_dir / "BENCH_eval.json"
    payload = (
        json.loads(results_path.read_text())
        if results_path.exists() else {}
    )
    payload["batched_forward"] = {
        "model": model_name,
        "dataset": dataset,
        "method": "focus",
        "samples": BATCH_BENCH_SAMPLES,
        "batch_size": FORWARD_BATCH,
        "rounds": BATCH_ROUNDS,
        "serial_wall_s": round(serial_wall, 4),
        "batched_wall_s": round(batched_wall, 4),
        "speedup": round(speedup, 3),
        "speedup_gate": gate,
        "measurement": asdict(measurement),
        "buckets": {
            "count": len(buckets),
            "sizes": sorted(
                (len(bucket) for bucket in buckets), reverse=True
            ),
            "chunks": sum(
                -(-len(bucket) // FORWARD_BATCH) for bucket in buckets
            ),
        },
    }
    results_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
