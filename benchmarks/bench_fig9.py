"""Fig. 9: speedup, energy, and area/power breakdowns.

Paper reference (geometric means over 3 models x 3 datasets): Focus is
4.47x faster than the vanilla systolic array, 2.60x faster than
AdapTiV, 2.35x faster than CMC, 7.90x faster than the GPU and 2.37x
faster than GPU+FrameFusion; energy efficiency improves 4.67x over the
array.  The Focus power pie is ~59% DRAM with SEC+SIC under 3% of area.
"""

from repro.eval.experiments import fig9
from repro.eval.reporting import format_fig9

from conftest import bench_samples


def test_fig9(benchmark, publish):
    result = benchmark.pedantic(
        fig9, kwargs={"num_samples": max(2, bench_samples() // 2)},
        rounds=1, iterations=1,
    )
    publish("fig9", format_fig9(result))

    speedup = result.geomean_speedup
    benchmark.extra_info["focus_vs_sa"] = speedup["focus"]
    benchmark.extra_info["focus_vs_cmc"] = speedup["focus"] / speedup["cmc"]
    assert speedup["focus"] > 3.0
    assert speedup["focus"] > speedup["adaptiv"]
    assert speedup["focus"] > speedup["cmc"]
    assert speedup["focus"] > speedup["gpu"]
    assert speedup["focus"] > speedup["gpu+ff"]
    # Energy: Focus consumes the least among the accelerators.
    energy = result.geomean_energy
    assert energy["focus"] < energy["adaptiv"]
    assert energy["focus"] < energy["cmc"]
    # Power breakdown: DRAM dominates, as in Fig. 9(c).
    power = result.power_breakdown_w
    total = sum(power.values())
    assert power["dram"] / total > 0.4
