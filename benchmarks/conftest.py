"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper's
evaluation, prints the rows in the paper's layout, and writes them to
``benchmarks/results/`` for the EXPERIMENTS.md paper-vs-measured
comparison.  Sample counts scale with the ``REPRO_BENCH_SAMPLES``
environment variable (default 8).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_samples(default: int = 8) -> int:
    """Per-cell sample count for benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def publish(results_dir, capsys):
    """Return a callback that prints and persists a formatted result."""

    def _publish(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
