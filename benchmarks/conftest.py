"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper's
evaluation, prints the rows in the paper's layout, and writes them to
``benchmarks/results/`` for the EXPERIMENTS.md paper-vs-measured
comparison.  Sample counts scale with the ``REPRO_BENCH_SAMPLES``
environment variable (default 8).

Every driver routes through the experiment engine's process-wide
default instance (:func:`repro.engine.registry.default_engine`), so
evaluations shared between benchmarks — Fig. 9 reuses most of
Table II's cells, the Fig. 10 sweeps share their default-config point
— are computed once per session.  An autouse fixture snapshots the
engine's counters around every benchmark and the session writes
``benchmarks/results/BENCH_engine.json`` (wall-clock, executed jobs,
cache hit rate per experiment) so future PRs have a perf trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.engine.registry import default_engine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_ENGINE_TELEMETRY: dict[str, dict[str, float]] = {}


def bench_samples(default: int = 8) -> int:
    """Per-cell sample count for benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def publish(results_dir, capsys):
    """Return a callback that prints and persists a formatted result."""

    def _publish(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish


@pytest.fixture(autouse=True)
def _engine_telemetry(request):
    """Record each benchmark's engine activity for BENCH_engine.json."""
    engine = default_engine()
    stats_before = engine.stats.snapshot()
    cache_before = engine.cache.stats.as_dict()
    start = time.perf_counter()
    yield
    wall = time.perf_counter() - start
    delta = engine.stats.delta(stats_before)
    cache_after = engine.cache.stats.as_dict()
    lookups = (
        cache_after["hits"] + cache_after["misses"]
        - cache_before["hits"] - cache_before["misses"]
    )
    hits = cache_after["hits"] - cache_before["hits"]
    _ENGINE_TELEMETRY[request.node.name] = {
        "wall_s": round(wall, 4),
        "jobs_submitted": delta.jobs_submitted,
        "jobs_deduped": delta.jobs_deduped,
        "cache_hits": hits,
        "executed": delta.executed,
        "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
    }


def pytest_sessionfinish(session, exitstatus):
    if not _ENGINE_TELEMETRY:
        return
    engine = default_engine()
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "samples": bench_samples(),
        "experiments": _ENGINE_TELEMETRY,
        "session_totals": {
            **engine.stats.as_dict(),
            "cache": engine.cache.stats.as_dict(),
        },
    }
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
