"""Sharded trace simulation over the Table II / Fig. 9 grid.

The acceptance gate for the sharded-simulation PR: for every (model,
dataset, method) cell of the paper's video grid, ``simulate_many``
executed as sharded ``sim`` jobs on a 4-worker engine must be
*bit-identical* to the serial fold.  The run doubles as the telemetry
emitter — ``benchmarks/results/BENCH_sim.json`` records wall-clock for
the serial, sharded-cold, and sharded-warm sweeps, the shard count,
and the engine cache hit rate, so future PRs have a perf trajectory
for the simulation phase like BENCH_engine.json provides for the
evaluation phase.
"""

import json
import time

from repro.accel.arch import ADAPTIV, CMC, FOCUS, SYSTOLIC
from repro.accel.scaling import scale_to_paper
from repro.accel.sim_jobs import SIM_TELEMETRY, reset_sim_telemetry
from repro.accel.simulator import simulate_many
from repro.engine import EvalJob, ExperimentEngine
from repro.engine.registry import default_engine
from repro.eval.experiments import VIDEO_DATASETS
from repro.model.zoo import VIDEO_MODELS, get_model_config

from conftest import bench_samples

GRID_METHODS = (
    ("dense", SYSTOLIC),
    ("adaptiv", ADAPTIV),
    ("cmc", CMC),
    ("focus", FOCUS),
)

SHARD_WORKERS = 4


def _grid_traces(samples):
    """Paper-scale traces for every cell of the video grid.

    The evaluation cells run through the process-wide default engine,
    so they dedupe against bench_table2 / bench_fig9 in the same
    session (the fig9 benchmark uses the same sample count).
    """
    jobs = {
        (model, dataset, method): EvalJob(
            model=model, dataset=dataset, method=method,
            num_samples=samples, seed=0,
        )
        for model in VIDEO_MODELS
        for dataset in VIDEO_DATASETS
        for method, _ in GRID_METHODS
    }
    results = default_engine().run(list(jobs.values()))
    arch_for = dict(GRID_METHODS)
    cells = {}
    for (model, dataset, method), job in jobs.items():
        cell = results[job]
        hidden = get_model_config(model).hidden
        cells[(model, dataset, method)] = (
            [scale_to_paper(t, hidden) for t in cell.traces],
            arch_for[method],
        )
    return cells


def test_sim_sharding_parity_and_telemetry(benchmark, results_dir):
    samples = max(2, bench_samples() // 2)
    cells = _grid_traces(samples)

    serial_start = time.perf_counter()
    serial = {
        key: simulate_many(traces, arch)
        for key, (traces, arch) in cells.items()
    }
    serial_wall = time.perf_counter() - serial_start

    engine = ExperimentEngine(workers=SHARD_WORKERS)
    reset_sim_telemetry()

    def sharded_sweep():
        return {
            key: simulate_many(traces, arch, engine=engine)
            for key, (traces, arch) in cells.items()
        }

    cold_start = time.perf_counter()
    sharded = benchmark.pedantic(sharded_sweep, rounds=1, iterations=1)
    cold_wall = time.perf_counter() - cold_start
    cold_records = list(SIM_TELEMETRY)

    reset_sim_telemetry()
    warm_start = time.perf_counter()
    warm = sharded_sweep()
    warm_wall = time.perf_counter() - warm_start
    warm_records = list(SIM_TELEMETRY)

    # The tentpole guarantee: sharded == serial, bit for bit, on every
    # cell of the grid — cold (executed) and warm (cache-served) alike.
    for key in cells:
        assert sharded[key] == serial[key], key
        assert warm[key] == serial[key], key

    total_shards = sum(record["shards"] for record in cold_records)
    hit_rate = engine.cache.stats.hit_rate
    benchmark.extra_info["grid_cells"] = len(cells)
    benchmark.extra_info["total_shards"] = total_shards
    benchmark.extra_info["cache_hit_rate"] = hit_rate

    payload = {
        "samples": samples,
        "grid_cells": len(cells),
        "workers": SHARD_WORKERS,
        "serial_wall_s": round(serial_wall, 4),
        "sharded_cold_wall_s": round(cold_wall, 4),
        "sharded_warm_wall_s": round(warm_wall, 4),
        "total_shards": total_shards,
        "sim_jobs_executed": engine.stats.executed_by_kind.get("sim", 0),
        "cache_hit_rate": round(hit_rate, 4),
        "cache": engine.cache.stats.as_dict(),
        "sweeps": cold_records + warm_records,
    }
    (results_dir / "BENCH_sim.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # The warm sweep must be served entirely from the result cache.
    assert sum(r["executed"] for r in warm_records) == 0
    assert sum(r["cache_hits"] for r in warm_records) == total_shards
