"""Serving benchmark: time-to-first-event and SSE fan-out throughput.

Two measurements, written to ``BENCH_serve.json``:

* ``time_to_first_event_s`` — POST a real registry run and measure
  from the POST to the first SSE frame on ``/runs/{id}/events``
  (the latency a live dashboard sees).
* ``fanout`` — replay a synthetic run of ``FANOUT_EVENTS`` encoded
  progress events to 8 concurrent JSON-lines subscribers and report
  aggregate delivered events/sec (ring-buffer replay + HTTP framing,
  isolated from engine cost).

Both are gated loosely (serving must stay interactive) — the JSON is
the trajectory record, the gate only catches collapse.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import bench_samples

from repro.engine import ExperimentEngine
from repro.engine.jobs import EvalJob
from repro.engine.scheduler import ProgressEvent
from repro.serve import AsyncExperimentEngine, events as codec
from repro.serve.server import Run, RunLog, ServeApp

SUBSCRIBERS = 8
FANOUT_EVENTS = 2000
MAX_FIRST_EVENT_S = 5.0
MIN_EVENTS_PER_SEC = 1000.0


async def _start(app: ServeApp):
    await app.engine.warm_up()
    server = await asyncio.start_server(
        app.handle_client, "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


async def _request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write((head + "\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw


async def _time_to_first_event(app: ServeApp, port: int) -> float:
    start = time.perf_counter()
    raw = await _request(
        port, "POST", "/runs",
        {"experiments": ["fig13"], "samples": bench_samples(2)},
    )
    run = json.loads(raw.partition(b"\r\n\r\n")[2])
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET /runs/{run['run_id']}/events?format=jsonl HTTP/1.1\r\n"
        "Host: bench\r\n\r\n".encode()
    )
    await writer.drain()
    buffered = b""
    while b"\n" not in buffered.partition(b"\r\n\r\n")[2]:
        chunk = await reader.read(4096)
        assert chunk, "stream ended before the first event"
        buffered += chunk
    first_event_s = time.perf_counter() - start
    await reader.read()  # drain to the terminal event
    writer.close()
    return first_event_s


async def _synthetic_run(events: int) -> Run:
    """A finished run whose log replays ``events`` encoded progress
    events — isolates fan-out cost from engine cost."""
    log = RunLog(capacity=events + 2)
    run = Run(
        run_id="bench-fanout", experiments=["synthetic"], params={},
        log=log, handle=None, status="done",
    )
    job = EvalJob(
        model="llava-video", dataset="videomme", method="focus",
        num_samples=8, seed=0,
    )
    await log.append(
        codec.encode_run_started(run.run_id, ["synthetic"], {})
    )
    for i in range(events):
        await log.append(codec.encode_progress(ProgressEvent(
            action="completed", job=job, completed=i + 1,
            total=events, elapsed_s=0.0, seq=i + 1,
        )))
    await log.append(codec.encode_run_done(run.run_id, {}, 0.0))
    return run


async def _fanout(app: ServeApp, port: int) -> dict:
    run = await _synthetic_run(FANOUT_EVENTS)
    app.runs[run.run_id] = run

    async def subscribe():
        raw = await _request(
            port, "GET", f"/runs/{run.run_id}/events?format=jsonl"
        )
        lines = raw.partition(b"\r\n\r\n")[2].decode().splitlines()
        events = [codec.parse_event(line) for line in lines]
        assert len(events) == FANOUT_EVENTS + 2
        assert events[-1]["event"] == "run-done"
        return len(events)

    start = time.perf_counter()
    counts = await asyncio.gather(
        *(subscribe() for _ in range(SUBSCRIBERS))
    )
    wall_s = time.perf_counter() - start
    delivered = sum(counts)
    return {
        "subscribers": SUBSCRIBERS,
        "events_per_subscriber": FANOUT_EVENTS + 2,
        "delivered_events": delivered,
        "wall_s": wall_s,
        "events_per_sec": delivered / wall_s,
    }


def test_serve_benchmark(results_dir, capsys):
    async def scenario():
        app = ServeApp(AsyncExperimentEngine(ExperimentEngine()))
        server, port = await _start(app)
        try:
            first_event_s = await _time_to_first_event(app, port)
            fanout = await _fanout(app, port)
        finally:
            server.close()
            await server.wait_closed()
            await app.shutdown()
        return first_event_s, fanout

    first_event_s, fanout = asyncio.run(scenario())

    payload = {
        "time_to_first_event_s": first_event_s,
        "fanout": fanout,
        "gate": {
            "max_time_to_first_event_s": MAX_FIRST_EVENT_S,
            "min_events_per_sec": MIN_EVENTS_PER_SEC,
        },
    }
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    with capsys.disabled():
        print(
            f"\n[serve] first event in {first_event_s * 1e3:.0f} ms; "
            f"fan-out {fanout['events_per_sec']:.0f} events/s "
            f"to {SUBSCRIBERS} subscribers\n"
        )

    assert first_event_s <= MAX_FIRST_EVENT_S
    assert fanout["events_per_sec"] >= MIN_EVENTS_PER_SEC
