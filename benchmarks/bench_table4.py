"""Table IV: influence of INT8 quantization on accuracy and sparsity.

Paper reference: INT8 costs Focus ~0.5% accuracy on average and
changes sparsity by only ~0.13% — concentration and quantization
compose.
"""

from repro.eval.experiments import table4
from repro.eval.reporting import format_table4

from conftest import bench_samples


def test_table4(benchmark, publish):
    rows = benchmark.pedantic(
        table4, kwargs={"num_samples": bench_samples()},
        rounds=1, iterations=1,
    )
    publish("table4", format_table4(rows))

    mean_sparsity_shift = sum(
        abs(row.sparsity_degrade) for row in rows
    ) / len(rows)
    benchmark.extra_info["mean_sparsity_shift"] = mean_sparsity_shift
    assert mean_sparsity_shift < 5.0, (
        "INT8 should barely change concentration sparsity"
    )
    assert all(row.ours_sparsity > 65.0 for row in rows)
