"""Table II: accuracy and computation sparsity of all methods on the
three video-VLM analogs x three video benchmarks.

Paper reference values (Table II): Focus sparsity 75.99-85.49%
(avg 80.19), FrameFusion fixed at 70%, AdapTiV 32.52-52.15%, CMC
35.23-63.69%; Focus accuracy within ~1.2% of dense on average.
"""

from repro.eval.experiments import table2
from repro.eval.reporting import format_table2

from conftest import bench_samples


def test_table2(benchmark, publish):
    result = benchmark.pedantic(
        table2, kwargs={"num_samples": bench_samples()},
        rounds=1, iterations=1,
    )
    publish("table2", format_table2(result))

    focus = [result.cells[key][1] for key in result.cells
             if key[2] == "focus"]
    adaptiv = [result.cells[key][1] for key in result.cells
               if key[2] == "adaptiv"]
    mean_focus = sum(focus) / len(focus)
    benchmark.extra_info["focus_mean_sparsity"] = mean_focus
    assert mean_focus > 70.0, "Focus should exceed 70% sparsity"
    assert mean_focus > sum(adaptiv) / len(adaptiv)
