"""Fault-recovery benchmark: overhead and re-execution discipline.

The acceptance gates for the fault-tolerance PR, driven by the
deterministic :class:`~repro.engine.faults.FaultPlan` harness over the
Table II cell workload:

* **Recovery overhead** — a run that suffers one worker hard-kill and
  one flaky-twice job must finish within ``1.15x`` the fault-free
  wall clock (the pool respawn and the two retries are the only extra
  work).
* **Bit-identity** — the faulted run's results must match the
  fault-free run's on every cell, field for field.
* **Zero redundant re-execution** — with part of the workload already
  cached, a faulted run executes *exactly* the uncached jobs: crash
  recovery re-dispatches only un-completed work and never invalidates
  cache entries.  A warm faulted re-run executes nothing at all.

``benchmarks/results/BENCH_faults.json`` records the walls, ratios,
and executed-job counts so future PRs have a recovery-cost trajectory.
"""

import json
import time

from repro.engine import (
    ExperimentEngine,
    ResultCache,
    RetryPolicy,
    install_fault_plan,
)
from repro.eval.experiments import plan_table2

from conftest import bench_samples

WORKERS = 2
MAX_OVERHEAD_RATIO = 1.15

# One worker hard-kill on the cmc cell's first attempt, plus a
# flaky-twice framefusion cell: together they exercise pool respawn,
# cohort re-dispatch, and the retry/backoff path in a single run.
FAULT_SPEC = "eval:cmc:*@1:kill; eval:framefusion:*@2:raise"

RETRY_POLICY = RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0)


def _jobs(samples):
    plan = plan_table2(
        models=("llava-video",), datasets=("videomme",),
        num_samples=samples,
    )
    return sorted(set(plan.jobs), key=lambda job: job.job_id)


def _engine(cache_dir=None):
    return ExperimentEngine(
        workers=WORKERS,
        cache=ResultCache(cache_dir=cache_dir),
        retry_policy=RETRY_POLICY,
    )


def _timed_run(engine, jobs):
    start = time.perf_counter()
    results = engine.run(jobs)
    return results, time.perf_counter() - start


def test_fault_recovery_overhead_and_reexecution(results_dir, tmp_path):
    samples = bench_samples()
    jobs = _jobs(samples)
    assert len(jobs) >= 4  # kill + flaky targets plus innocents

    # -- fault-free baseline (cold, no disk cache) --------------------
    install_fault_plan(None)
    baseline_engine = _engine()
    baseline, fault_free_wall = _timed_run(baseline_engine, jobs)
    assert baseline_engine.stats.executed == len(jobs)

    # -- faulted run: one worker kill + one flaky-twice job -----------
    install_fault_plan(FAULT_SPEC)
    try:
        faulted_engine = _engine()
        faulted, faulted_wall = _timed_run(faulted_engine, jobs)
    finally:
        install_fault_plan(None)
    assert faulted_engine.stats.pool_crashes >= 1
    assert faulted_engine.stats.retries >= 2  # the flaky job's two raises

    # bit-identity: recovery re-derives every seed, so the faulted run
    # matches the fault-free one field for field on every cell
    for job in jobs:
        assert faulted[job].accuracy == baseline[job].accuracy, job
        assert faulted[job].correct == baseline[job].correct, job
        assert faulted[job].sparsities == baseline[job].sparsities, job

    overhead_ratio = faulted_wall / max(fault_free_wall, 1e-9)
    assert overhead_ratio <= MAX_OVERHEAD_RATIO, (
        f"fault recovery cost {overhead_ratio:.3f}x fault-free wall "
        f"({faulted_wall:.2f}s vs {fault_free_wall:.2f}s), "
        f"budget {MAX_OVERHEAD_RATIO}x"
    )

    # -- zero redundant re-execution over a warm cache ----------------
    # Pre-populate the disk cache with the jobs the fault plan never
    # touches, then let the faulted run loose on the full workload: it
    # must execute exactly the uncached jobs, never the cached ones.
    cache_dir = tmp_path / "cache"
    untouched = [
        job for job in jobs if job.method not in ("cmc", "framefusion")
    ]
    seed_engine = _engine(cache_dir)
    seed_engine.run(untouched)
    assert seed_engine.stats.executed == len(untouched)

    install_fault_plan(FAULT_SPEC)
    try:
        partial_engine = _engine(cache_dir)
        partial_results, _ = _timed_run(partial_engine, jobs)
    finally:
        install_fault_plan(None)
    expected_fresh = len(jobs) - len(untouched)
    redundant = partial_engine.stats.executed - expected_fresh
    assert redundant == 0, (
        f"faulted run re-executed {redundant} already-cached job(s)"
    )
    assert partial_engine.cache.stats.hits >= len(untouched)
    for job in jobs:
        assert partial_results[job].accuracy == baseline[job].accuracy

    # a fully warm faulted re-run executes nothing: cache hits win
    # before any fault can fire
    install_fault_plan(FAULT_SPEC)
    try:
        warm_engine = _engine(cache_dir)
        _, warm_wall = _timed_run(warm_engine, jobs)
    finally:
        install_fault_plan(None)
    assert warm_engine.stats.executed == 0

    payload = {
        "samples": samples,
        "jobs": len(jobs),
        "workers": WORKERS,
        "fault_spec": FAULT_SPEC,
        "fault_free_wall_s": round(fault_free_wall, 4),
        "faulted_wall_s": round(faulted_wall, 4),
        "overhead_ratio": round(overhead_ratio, 4),
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "pool_crashes": faulted_engine.stats.pool_crashes,
        "retries": faulted_engine.stats.retries,
        "precached_jobs": len(untouched),
        "fresh_jobs_executed": partial_engine.stats.executed,
        "redundant_reexecutions": redundant,
        "warm_faulted_wall_s": round(warm_wall, 4),
        "warm_faulted_executed": warm_engine.stats.executed,
    }
    (results_dir / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
