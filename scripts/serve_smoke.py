"""CI smoke client: drive one run over SSE and check offline parity.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py http://127.0.0.1:8377 fig13 1

Against an already-running ``repro serve`` instance this:

1. waits for ``/healthz``;
2. ``POST /runs`` launches the given experiment;
3. consumes ``GET /runs/{id}/events`` as SSE with the stdlib client,
   dropping the connection after a few events and resuming with
   ``Last-Event-ID`` — asserting the stitched stream has contiguous
   ids and ends in ``run-done``;
4. fetches ``GET /runs/{id}/result`` and asserts the report is
   byte-identical to an in-process offline run of the same spec, and
   matches the digest carried by the terminal event.

Stdlib + the repo only (the offline arm imports ``repro.cli``).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from repro.serve import events as codec


def wait_healthy(base: str, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=2) as r:
                if json.load(r).get("ok"):
                    return
        except (urllib.error.URLError, OSError):
            pass
        if time.monotonic() > deadline:
            raise SystemExit(f"server at {base} never became healthy")
        time.sleep(0.25)


def read_sse(
    base: str, run_id: str, last_id: int = 0, max_events: int | None = None
) -> list[dict]:
    """Stream SSE frames, optionally dropping after ``max_events``."""
    request = urllib.request.Request(
        f"{base}/runs/{run_id}/events",
        headers={"Last-Event-ID": str(last_id)} if last_id else {},
    )
    events: list[dict] = []
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.headers.get_content_type() == "text/event-stream", (
            response.headers.get_content_type()
        )
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("data:"):
                events.append(codec.parse_event(line[5:].lstrip()))
                if max_events is not None and len(events) >= max_events:
                    return events  # drop the connection mid-stream
            if events and codec.is_terminal(events[-1]):
                return events
    return events


def main() -> int:
    base = sys.argv[1].rstrip("/")
    experiment = sys.argv[2] if len(sys.argv) > 2 else "fig13"
    samples = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    wait_healthy(base)
    body = json.dumps(
        {"experiments": [experiment], "samples": samples, "seed": 0}
    ).encode()
    request = urllib.request.Request(
        f"{base}/runs", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        run = json.load(response)
    run_id = run["run_id"]
    print(f"launched {experiment} as run {run_id}")

    # Read a few events, drop the connection, resume by Last-Event-ID.
    head = read_sse(base, run_id, max_events=2)
    tail = read_sse(base, run_id, last_id=head[-1]["id"])
    stream = head + tail
    ids = [event["id"] for event in stream]
    assert ids == list(range(1, len(stream) + 1)), (
        f"resume lost or duplicated events: {ids}"
    )
    terminal = stream[-1]
    assert terminal["event"] == "run-done", terminal
    assert stream[0]["event"] == "run-started"
    actions = [e.get("action") for e in stream if e["event"] == "progress"]
    print(f"streamed {len(stream)} events "
          f"({len(head)} before the drop, resume lossless); "
          f"actions: {sorted(set(actions))}")

    with urllib.request.urlopen(
        f"{base}/runs/{run_id}/result", timeout=30
    ) as response:
        result = json.load(response)
    served = result["experiments"][experiment]

    from repro.cli import run_experiments

    offline = run_experiments([experiment], samples=samples, seed=0)
    assert served == offline[experiment], (
        "served report differs from the offline run:\n"
        f"--- served ---\n{served}\n--- offline ---\n{offline[experiment]}"
    )
    assert terminal["reports"][experiment]["sha256"] == (
        codec.report_digest(offline[experiment])
    ), "terminal event digest does not match the offline report"
    print("terminal event digest and served result match the offline "
          "run byte-for-byte")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
