"""CI smoke client: drive one run over SSE and check offline parity.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py http://127.0.0.1:8377 fig13 1

Against an already-running ``repro serve`` instance this:

1. waits for ``/healthz``;
2. ``POST /runs`` launches the given experiment;
3. consumes ``GET /runs/{id}/events`` as SSE with the stdlib client,
   dropping the connection after a few events and resuming with
   ``Last-Event-ID`` — asserting the stitched stream has contiguous
   ids and ends in ``run-done``;
4. fetches ``GET /runs/{id}/result`` and asserts the report is
   byte-identical to an in-process offline run of the same spec, and
   matches the digest carried by the terminal event.

With ``--capture PATH`` the full JSON-lines stream is additionally
saved raw (the byte-exact live body) after the run finishes.  With
``--replay RUN_ID --capture PATH`` the client instead checks a
*stored* run against that capture — typically after the server was
restarted on the same ``--store-path``: the replayed stream must be
byte-identical to the recorded live one, and a mid-stream
``last_event_id`` resume must return exactly the captured suffix.

Stdlib + the repo only (the offline arm imports ``repro.cli``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
import urllib.error
import urllib.request

from repro.serve import events as codec


def wait_healthy(base: str, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=2) as r:
                if json.load(r).get("ok"):
                    return
        except (urllib.error.URLError, OSError):
            pass
        if time.monotonic() > deadline:
            raise SystemExit(f"server at {base} never became healthy")
        time.sleep(0.25)


def read_sse(
    base: str, run_id: str, last_id: int = 0, max_events: int | None = None
) -> list[dict]:
    """Stream SSE frames, optionally dropping after ``max_events``."""
    request = urllib.request.Request(
        f"{base}/runs/{run_id}/events",
        headers={"Last-Event-ID": str(last_id)} if last_id else {},
    )
    events: list[dict] = []
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.headers.get_content_type() == "text/event-stream", (
            response.headers.get_content_type()
        )
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("data:"):
                events.append(codec.parse_event(line[5:].lstrip()))
                if max_events is not None and len(events) >= max_events:
                    return events  # drop the connection mid-stream
            if events and codec.is_terminal(events[-1]):
                return events
    return events


def fetch_jsonl(base: str, run_id: str, last_id: int = 0) -> bytes:
    """The raw JSON-lines body of a run's event stream."""
    url = f"{base}/runs/{run_id}/events?format=jsonl"
    if last_id:
        url += f"&last_event_id={last_id}"
    with urllib.request.urlopen(url, timeout=120) as response:
        return response.read()


def check_replay(base: str, run_id: str, capture: str) -> int:
    """Byte-compare a stored run's stream against a live capture."""
    captured = pathlib.Path(capture).read_bytes()
    replayed = fetch_jsonl(base, run_id)
    assert replayed == captured, (
        f"replayed stream differs from the live capture "
        f"({len(replayed)} vs {len(captured)} bytes)"
    )
    # Ids are dense 1..n, so resuming after id=cut must return
    # exactly the captured lines past the first ``cut``.
    lines = captured.decode("utf-8").splitlines(keepends=True)
    cut = len(lines) // 2
    suffix = fetch_jsonl(base, run_id, last_id=cut)
    assert suffix == "".join(lines[cut:]).encode("utf-8"), (
        f"resume after id={cut} does not match the captured suffix"
    )
    print(f"replay of run {run_id} is byte-identical to the live "
          f"capture ({len(lines)} events), including resume after "
          f"id={cut}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("base", help="server base URL")
    parser.add_argument("experiment", nargs="?", default="fig13")
    parser.add_argument("samples", nargs="?", type=int, default=1)
    parser.add_argument(
        "--capture", metavar="PATH", default=None,
        help="save (or, with --replay, compare against) the raw "
             "JSON-lines stream body",
    )
    parser.add_argument(
        "--replay", metavar="RUN_ID", default=None,
        help="check a stored run against --capture instead of "
             "launching a new one",
    )
    return parser


def main() -> int:
    args = build_parser().parse_args()
    base = args.base.rstrip("/")
    experiment, samples = args.experiment, args.samples

    wait_healthy(base)
    if args.replay is not None:
        if args.capture is None:
            raise SystemExit("--replay requires --capture PATH")
        return check_replay(base, args.replay, args.capture)
    body = json.dumps(
        {"experiments": [experiment], "samples": samples, "seed": 0}
    ).encode()
    request = urllib.request.Request(
        f"{base}/runs", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        run = json.load(response)
    run_id = run["run_id"]
    print(f"launched {experiment} as run {run_id}")

    # Read a few events, drop the connection, resume by Last-Event-ID.
    head = read_sse(base, run_id, max_events=2)
    tail = read_sse(base, run_id, last_id=head[-1]["id"])
    stream = head + tail
    ids = [event["id"] for event in stream]
    assert ids == list(range(1, len(stream) + 1)), (
        f"resume lost or duplicated events: {ids}"
    )
    terminal = stream[-1]
    assert terminal["event"] == "run-done", terminal
    assert stream[0]["event"] == "run-started"
    actions = [e.get("action") for e in stream if e["event"] == "progress"]
    print(f"streamed {len(stream)} events "
          f"({len(head)} before the drop, resume lossless); "
          f"actions: {sorted(set(actions))}")

    with urllib.request.urlopen(
        f"{base}/runs/{run_id}/result", timeout=30
    ) as response:
        result = json.load(response)
    served = result["experiments"][experiment]

    from repro.cli import run_experiments

    offline = run_experiments([experiment], samples=samples, seed=0)
    assert served == offline[experiment], (
        "served report differs from the offline run:\n"
        f"--- served ---\n{served}\n--- offline ---\n{offline[experiment]}"
    )
    assert terminal["reports"][experiment]["sha256"] == (
        codec.report_digest(offline[experiment])
    ), "terminal event digest does not match the offline report"
    print("terminal event digest and served result match the offline "
          "run byte-for-byte")

    if args.capture is not None:
        body = fetch_jsonl(base, run_id)
        pathlib.Path(args.capture).write_bytes(body)
        print(f"captured {len(body)} bytes of JSON-lines stream "
              f"for run {run_id} to {args.capture}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
