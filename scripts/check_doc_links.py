"""Fail on dead relative links in Markdown files.

Usage::

    python scripts/check_doc_links.py README.md src/repro/engine/ARCHITECTURE.md

Checks every ``[text](target)`` link whose target is a relative path:
the path (resolved against the Markdown file's directory) must exist.
External schemes (``http:``, ``https:``, ``mailto:``) and pure
in-page anchors (``#...``) are skipped; a ``path#anchor`` target is
checked for the path only.  Exit code 1 lists every dead link.

CI runs this over the README and the architecture note so the docs
can never silently point at files a refactor moved or deleted.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def dead_links(markdown: Path) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every broken relative link."""
    broken = []
    for lineno, line in enumerate(
        markdown.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for target in LINK.findall(line):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (markdown.parent / path).exists():
                broken.append((lineno, target))
    return broken


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        markdown = Path(name)
        if not markdown.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in dead_links(markdown):
            print(f"{name}:{lineno}: dead link -> {target}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve in {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
